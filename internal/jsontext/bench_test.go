package jsontext_test

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
	"repro/internal/jsontext"
)

// benchData renders a realistic NDJSON buffer: the twitter generator has
// the key-repetition profile the lexer's string cache targets (the same
// few dozen keys on every record).
func benchData(b *testing.B) []byte {
	b.Helper()
	g, err := dataset.New("twitter")
	if err != nil {
		b.Fatal(err)
	}
	return dataset.NDJSON(g, 1000, 1)
}

// BenchmarkLexNDJSON drains the token stream of a realistic NDJSON
// buffer. Allocations per op are dominated by string tokens; the
// lexer-level string cache exists to flatten exactly this number.
func BenchmarkLexNDJSON(b *testing.B) {
	data := benchData(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lex := jsontext.NewLexer(bytes.NewReader(data))
		for {
			tok, err := lex.Next()
			if err != nil {
				b.Fatal(err)
			}
			if tok.Kind == jsontext.TokEOF {
				break
			}
		}
	}
}

// BenchmarkLexNDJSONPooled is BenchmarkLexNDJSON through the lexer pool:
// the per-chunk cost the map phase pays, with the bufio buffer, scratch
// and string cache carried over between chunks.
func BenchmarkLexNDJSONPooled(b *testing.B) {
	data := benchData(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lex := jsontext.AcquireLexer(bytes.NewReader(data))
		for {
			tok, err := lex.Next()
			if err != nil {
				b.Fatal(err)
			}
			if tok.Kind == jsontext.TokEOF {
				break
			}
		}
		lex.Release()
	}
}
