// Package cluster is a discrete-event simulator of the small Spark/HDFS
// cluster used in the paper's scalability study (Section 6.1: six nodes,
// two 10-core CPUs each, Gigabit interconnect). It models the quantities
// the paper's analysis of Tables 7 and 8 turns on:
//
//   - block placement: HDFS had stored the whole dataset on ONE node, so
//     "the computation was performed on two nodes while the remaining
//     four nodes were idle" — remote tasks are throttled by the source
//     node's network link;
//   - the manual partitioning strategy: spreading partitions across
//     nodes and processing them locally restores parallelism, and thanks
//     to associativity the per-partition schemas are fused at the end at
//     negligible cost.
//
// Time is virtual (simulated seconds), so results are deterministic and
// independent of the host machine. Compute rates are calibrated against
// a real measurement by the experiments harness so the magnitudes stay
// plausible; the claims under test are about the *shape* (who is busy,
// what helps), not absolute seconds.
package cluster

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/obs"
)

// Node describes one cluster machine.
type Node struct {
	// Name identifies the node in reports.
	Name string
	// Cores is the number of concurrent map tasks the node can run.
	Cores int
	// NetMBps is the node's network bandwidth in megabytes per second;
	// remote readers of blocks stored on this node share it.
	NetMBps float64
	// CrashAt, when positive, fail-stops the node at that virtual time
	// mid-phase: attempts running on it die (their work is lost and the
	// blocks re-execute elsewhere, the retry Spark performs for the
	// paper's pipeline) and the node accepts no further tasks. Zero
	// means the node never crashes. Blocks stored only on a crashed
	// node remain readable — the model crashes compute, not storage —
	// so the job completes whenever any node survives.
	CrashAt time.Duration
}

// Config describes the simulated cluster and its cost model.
type Config struct {
	// Nodes is the machine list. The paper's cluster is six nodes with
	// 20 cores each on Gigabit Ethernet (~120 MB/s).
	Nodes []Node
	// ComputeMBps is the per-core map throughput: how many megabytes of
	// input one core parses and type-infers per second.
	ComputeMBps float64
	// FusePerTask is the reduce-side cost of fusing one map output into
	// the accumulated schema. Fused schemas are tiny compared to the
	// data, which is why the final fusion is cheap (Table 8).
	FusePerTask time.Duration
	// Recorder, when non-nil, receives the simulated job's headline
	// numbers under the cluster_* names of docs/OBSERVABILITY.md. The
	// recorded times are virtual (deterministic), not host timings.
	Recorder obs.Recorder
}

// PaperCluster returns the 6-node configuration of Section 6.1.
// computeMBps is measured on the host by the experiments harness.
func PaperCluster(computeMBps float64) Config {
	nodes := make([]Node, 6)
	for i := range nodes {
		nodes[i] = Node{Name: fmt.Sprintf("node%d", i+1), Cores: 20, NetMBps: 120}
	}
	return Config{Nodes: nodes, ComputeMBps: computeMBps, FusePerTask: 200 * time.Microsecond}
}

// Block is one unit of stored input: a contiguous chunk of records with
// a primary storage node and optional extra replicas (HDFS keeps three
// copies by default).
type Block struct {
	// Bytes is the block size.
	Bytes int64
	// Node is the index of the node storing the primary copy.
	Node int
	// Extra lists nodes holding additional replicas; a task scheduled on
	// any replica's node reads locally.
	Extra []int
}

// replicaOn reports whether the block has a copy on node n.
func (b Block) replicaOn(n int) bool {
	if b.Node == n {
		return true
	}
	for _, e := range b.Extra {
		if e == n {
			return true
		}
	}
	return false
}

// Placement decides where blocks live.
type Placement int

// Placement policies.
const (
	// PlaceAllOnOne stores every block on the first node — what the
	// paper found HDFS had done with the NYTimes dataset.
	PlaceAllOnOne Placement = iota
	// PlaceRoundRobin spreads blocks evenly across nodes — the effect of
	// the paper's manual partitioning strategy.
	PlaceRoundRobin
)

// String names the placement policy.
func (p Placement) String() string {
	switch p {
	case PlaceAllOnOne:
		return "all-on-one-node"
	case PlaceRoundRobin:
		return "round-robin"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// PlaceBlocks assigns storage nodes to blocks of the given sizes, with
// a single copy per block (the effective situation the paper observed).
func PlaceBlocks(sizes []int64, p Placement, numNodes int) []Block {
	return PlaceBlocksReplicated(sizes, p, numNodes, 1)
}

// PlaceBlocksReplicated is PlaceBlocks with an HDFS-style replication
// factor: the primary copy follows the placement policy and the extra
// replicas scatter deterministically across the other nodes, the way
// HDFS spreads replicas for fault tolerance. With replication >= 2 even
// a fully skewed primary placement leaves a local copy of most blocks
// somewhere else — quantifying how much of the paper's Table 7
// pathology depends on the effective replication being 1.
func PlaceBlocksReplicated(sizes []int64, p Placement, numNodes, replicas int) []Block {
	if replicas < 1 {
		replicas = 1
	}
	if replicas > numNodes {
		replicas = numNodes
	}
	blocks := make([]Block, len(sizes))
	for i, sz := range sizes {
		node := 0
		if p == PlaceRoundRobin {
			node = i % numNodes
		}
		b := Block{Bytes: sz, Node: node}
		// Deterministic scatter for the extra copies.
		next := node
		for r := 1; r < replicas; r++ {
			next = (next + 1 + (i*7+r*3)%(numNodes-1)) % numNodes
			for b.replicaOn(next) {
				next = (next + 1) % numNodes
			}
			b.Extra = append(b.Extra, next)
		}
		blocks[i] = b
	}
	return blocks
}

// Report summarizes one simulated job.
type Report struct {
	// Makespan is the virtual end-to-end time, including the final
	// reduce.
	Makespan time.Duration
	// MapTime is the virtual makespan of the map phase alone.
	MapTime time.Duration
	// ReduceTime is the virtual cost of fusing all map outputs.
	ReduceTime time.Duration
	// BusyByNode is each node's total busy core-time.
	BusyByNode []time.Duration
	// NodesUsed counts nodes that ran at least one task.
	NodesUsed int
	// RemoteTasks counts tasks that had to read their block over the
	// network.
	RemoteTasks int
	// RetriedTasks counts map attempts a node crash killed mid-task;
	// each re-executed on a surviving core.
	RetriedTasks int
	// LostTime is the virtual core-time those killed attempts had
	// consumed before dying. BusyByNode counts useful work only, so
	// utilization reflects throughput, not wasted effort.
	LostTime time.Duration
	// CrashedNodes counts nodes configured to fail-stop during the run.
	CrashedNodes int
	// Tasks is the number of map tasks (blocks).
	Tasks int
	// BytesProcessed is the total input size.
	BytesProcessed int64
}

// Utilization is the fraction of total core capacity that was busy
// during the map phase.
func (r Report) Utilization(totalCores int) float64 {
	if r.MapTime <= 0 || totalCores == 0 {
		return 0
	}
	var busy time.Duration
	for _, b := range r.BusyByNode {
		busy += b
	}
	return float64(busy) / (float64(r.MapTime) * float64(totalCores))
}

// Run simulates a map-reduce schema-inference job over the blocks.
//
// Scheduling is locality-first greedy: whenever a core frees, it takes a
// block stored on its own node if any remain, otherwise it fetches a
// remote block through the storing node's network link, which serializes
// concurrent remote reads — the bottleneck that leaves most of the
// cluster idle under PlaceAllOnOne.
func Run(cfg Config, blocks []Block) (Report, error) {
	if len(cfg.Nodes) == 0 {
		return Report{}, fmt.Errorf("cluster: no nodes configured")
	}
	if cfg.ComputeMBps <= 0 {
		return Report{}, fmt.Errorf("cluster: ComputeMBps must be positive, got %v", cfg.ComputeMBps)
	}
	for _, b := range blocks {
		if b.Node < 0 || b.Node >= len(cfg.Nodes) {
			return Report{}, fmt.Errorf("cluster: block stored on unknown node %d", b.Node)
		}
		for _, e := range b.Extra {
			if e < 0 || e >= len(cfg.Nodes) {
				return Report{}, fmt.Errorf("cluster: block replica on unknown node %d", e)
			}
		}
	}

	// Per-node pending local block lists (indices into blocks). A block
	// appears in the list of every node holding a replica; the taken set
	// prunes duplicates lazily.
	pending := make([][]int, len(cfg.Nodes))
	for i, b := range blocks {
		pending[b.Node] = append(pending[b.Node], i)
		for _, e := range b.Extra {
			pending[e] = append(pending[e], i)
		}
	}
	taken := make([]bool, len(blocks))
	// headOf returns the first not-yet-taken block pending on node n, or
	// -1, pruning consumed entries as a side effect.
	headOf := func(n int) int {
		for len(pending[n]) > 0 {
			idx := pending[n][0]
			if taken[idx] {
				pending[n] = pending[n][1:]
				continue
			}
			return idx
		}
		return -1
	}
	remaining := len(blocks)

	// Core state: next-free virtual time per core, grouped by node.
	type core struct {
		node int
		free float64 // seconds
	}
	var cores []core
	for n, node := range cfg.Nodes {
		for c := 0; c < node.Cores; c++ {
			cores = append(cores, core{node: n})
		}
	}
	nicFree := make([]float64, len(cfg.Nodes)) // per-node outgoing link

	// Per-node fail-stop times in virtual seconds (+Inf = healthy).
	crash := make([]float64, len(cfg.Nodes))
	crashedNodes := 0
	for n, node := range cfg.Nodes {
		crash[n] = math.Inf(1)
		if node.CrashAt > 0 {
			crash[n] = node.CrashAt.Seconds()
			crashedNodes++
		}
	}

	busy := make([]float64, len(cfg.Nodes))
	var makespan float64
	var bytes int64
	var lost float64
	remote := 0
	retried := 0

	// Earliest-completion-time list scheduling: each step commits one
	// block to the (core, block) pair that finishes soonest, accounting
	// for the source node's link when the read is remote. Ties break by
	// core index, so under skewed placement remote work concentrates on
	// the lowest-indexed remote node instead of trickling onto every
	// node — reproducing the paper's observation that the computation
	// ran on two nodes while the rest stayed idle.
	for remaining > 0 {
		bestCore, bestSrc := -1, -1
		var bestStart, bestEnd float64
		for ci := range cores {
			c := &cores[ci]
			// A core whose node has fail-stopped by its free time can
			// never run another task.
			if c.free >= crash[c.node] {
				continue
			}
			// Candidate block for this core: a local replica if any
			// remain, otherwise one from the node with the most pending
			// blocks.
			src := -1
			if headOf(c.node) >= 0 {
				src = c.node
			} else {
				for n := range pending {
					if headOf(n) >= 0 && (src < 0 || len(pending[n]) > len(pending[src])) {
						src = n
					}
				}
			}
			if src < 0 {
				break // nothing pending anywhere
			}
			b := blocks[headOf(src)]
			start := c.free
			if src != c.node {
				xferStart := start
				if nicFree[src] > xferStart {
					xferStart = nicFree[src]
				}
				start = xferStart + float64(b.Bytes)/(cfg.Nodes[src].NetMBps*1e6)
			}
			end := start + float64(b.Bytes)/(cfg.ComputeMBps*1e6)
			if bestCore < 0 || end < bestEnd {
				bestCore, bestSrc, bestStart, bestEnd = ci, src, start, end
			}
		}
		if bestCore < 0 {
			// No usable core is left: every node with live cores has
			// crashed (or, defensively, remaining disagreed with the
			// pending lists).
			return Report{}, fmt.Errorf("cluster: %d of %d blocks unprocessed: no usable cores remain", remaining, len(blocks))
		}

		c := &cores[bestCore]
		// The scheduler cannot see the future: if the chosen core's node
		// fail-stops before the attempt completes, the attempt dies at
		// the crash instant, its work is lost, the block stays pending
		// (to be re-executed on a surviving core), and the core is dead
		// from then on. Work that would start after the crash dies
		// immediately at no cost.
		if tc := crash[c.node]; bestEnd > tc {
			if bestStart < tc {
				retried++
				lost += tc - bestStart
				if tc > makespan {
					makespan = tc
				}
			}
			c.free = math.Inf(1)
			continue
		}
		blockIdx := headOf(bestSrc)
		taken[blockIdx] = true
		remaining--
		b := blocks[blockIdx]
		bytes += b.Bytes

		if bestSrc != c.node {
			remote++
			// The transfer ends when the task can start.
			nicFree[bestSrc] = bestStart
		}
		dur := float64(b.Bytes) / (cfg.ComputeMBps * 1e6)
		c.free = bestEnd
		busy[c.node] += dur
		if bestEnd > makespan {
			makespan = bestEnd
		}
	}

	rep := Report{
		MapTime:        secs(makespan),
		ReduceTime:     time.Duration(len(blocks)) * cfg.FusePerTask,
		BusyByNode:     make([]time.Duration, len(cfg.Nodes)),
		Tasks:          len(blocks),
		BytesProcessed: bytes,
		RemoteTasks:    remote,
		RetriedTasks:   retried,
		LostTime:       secs(lost),
		CrashedNodes:   crashedNodes,
	}
	rep.Makespan = rep.MapTime + rep.ReduceTime
	for n, b := range busy {
		rep.BusyByNode[n] = secs(b)
		if b > 0 {
			rep.NodesUsed++
		}
	}
	if rec := cfg.Recorder; rec != nil {
		// The _virtual suffix (not _ns) marks these as simulated clock
		// readings in nanoseconds: deterministic for a fixed
		// configuration, so they must survive Metrics.WithoutTimings.
		rec.Add("cluster_tasks", int64(rep.Tasks))
		rec.Add("cluster_remote_tasks", int64(rep.RemoteTasks))
		rec.Add("cluster_bytes", rep.BytesProcessed)
		rec.Set("cluster_nodes_used", int64(rep.NodesUsed))
		rec.Set("cluster_makespan_virtual", int64(rep.Makespan))
		rec.Set("cluster_map_virtual", int64(rep.MapTime))
		rec.Set("cluster_reduce_virtual", int64(rep.ReduceTime))
		rec.Set("cluster_utilization_virtual", int64(1000*rep.Utilization(cfg.TotalCores())))
		// Fault-handling metrics (stripped by Metrics.WithoutFaults):
		// crash-killed attempts and the virtual core-time they wasted.
		rec.Add("cluster_retried_tasks", int64(rep.RetriedTasks))
		rec.Set("cluster_crashed_nodes", int64(rep.CrashedNodes))
		rec.Set("cluster_retry_lost_virtual", int64(rep.LostTime))
	}
	return rep, nil
}

// RunPartitioned simulates the paper's manual strategy (Table 8): each
// partition is a group of blocks processed entirely on its own node
// ("each partition of data is processed in isolation"), and the
// resulting schemas are fused at the end. It returns one report per
// partition plus the final fusion time.
func RunPartitioned(cfg Config, partitions [][]int64) ([]Report, time.Duration, error) {
	if len(partitions) > len(cfg.Nodes) {
		return nil, 0, fmt.Errorf("cluster: %d partitions exceed %d nodes", len(partitions), len(cfg.Nodes))
	}
	reports := make([]Report, len(partitions))
	for i, sizes := range partitions {
		// A single-node sub-cluster runs the partition locally.
		sub := Config{Nodes: []Node{cfg.Nodes[i]}, ComputeMBps: cfg.ComputeMBps, FusePerTask: cfg.FusePerTask}
		blocks := PlaceBlocks(sizes, PlaceAllOnOne, 1)
		rep, err := Run(sub, blocks)
		if err != nil {
			return nil, 0, fmt.Errorf("partition %d: %w", i, err)
		}
		reports[i] = rep
	}
	// Final fusion of one small schema per partition.
	finalFuse := time.Duration(len(partitions)) * cfg.FusePerTask
	return reports, finalFuse, nil
}

// TotalCores sums the cores of all nodes.
func (c Config) TotalCores() int {
	total := 0
	for _, n := range c.Nodes {
		total += n.Cores
	}
	return total
}

// SplitBytes cuts a total size into n roughly equal block sizes.
func SplitBytes(total int64, n int) []int64 {
	if n <= 0 {
		return nil
	}
	out := make([]int64, n)
	base := total / int64(n)
	rem := total - base*int64(n)
	for i := range out {
		out[i] = base
		if int64(i) < rem {
			out[i]++
		}
	}
	return out
}

// secs converts simulated seconds to a time.Duration.
func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// SortedBusy returns node busy times in descending order, for reports.
func SortedBusy(rep Report) []time.Duration {
	out := append([]time.Duration(nil), rep.BusyByNode...)
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}
