package cluster

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// testCluster is a small 6-node cluster with a deliberately modest
// network so locality effects are visible.
func testCluster() Config {
	return PaperCluster(30) // 30 MB/s per core
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}, nil); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(Config{Nodes: []Node{{Cores: 1, NetMBps: 100}}}, nil); err == nil {
		t.Error("zero compute rate accepted")
	}
	cfg := testCluster()
	if _, err := Run(cfg, []Block{{Bytes: 1, Node: 99}}); err == nil {
		t.Error("block on unknown node accepted")
	}
}

func TestRunEmptyJob(t *testing.T) {
	rep, err := Run(testCluster(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks != 0 || rep.Makespan != 0 || rep.NodesUsed != 0 {
		t.Errorf("empty job report = %+v", rep)
	}
}

func TestSingleBlockSingleNode(t *testing.T) {
	cfg := Config{
		Nodes:       []Node{{Name: "n", Cores: 4, NetMBps: 100}},
		ComputeMBps: 10,
	}
	// 100 MB at 10 MB/s = 10 s on one core.
	rep, err := Run(cfg, []Block{{Bytes: 100e6, Node: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep.MapTime, 10*time.Second; got != want {
		t.Errorf("MapTime = %v, want %v", got, want)
	}
	if rep.NodesUsed != 1 || rep.RemoteTasks != 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestParallelismAcrossCores(t *testing.T) {
	cfg := Config{
		Nodes:       []Node{{Name: "n", Cores: 4, NetMBps: 100}},
		ComputeMBps: 10,
	}
	// 8 blocks of 10 MB: 2 waves on 4 cores = 2 s.
	blocks := PlaceBlocks(SplitBytes(80e6, 8), PlaceAllOnOne, 1)
	rep, err := Run(cfg, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep.MapTime, 2*time.Second; got != want {
		t.Errorf("MapTime = %v, want %v", got, want)
	}
}

func TestSkewedPlacementUnderusesCluster(t *testing.T) {
	// The Table 7 phenomenon: all blocks on one node leaves most of the
	// cluster idle, because remote readers share the source node's link.
	cfg := testCluster()
	sizes := SplitBytes(22e9, 128) // ~22 GB, the NYTimes dataset
	skewed, err := Run(cfg, PlaceBlocks(sizes, PlaceAllOnOne, len(cfg.Nodes)))
	if err != nil {
		t.Fatal(err)
	}
	spread, err := Run(cfg, PlaceBlocks(sizes, PlaceRoundRobin, len(cfg.Nodes)))
	if err != nil {
		t.Fatal(err)
	}
	if skewed.Makespan <= spread.Makespan {
		t.Errorf("skewed %v should be slower than spread %v", skewed.Makespan, spread.Makespan)
	}
	// Most of the work lands on the storing node under skew.
	busiest := SortedBusy(skewed)[0]
	var total time.Duration
	for _, b := range skewed.BusyByNode {
		total += b
	}
	if float64(busiest)/float64(total) < 0.5 {
		t.Errorf("busiest node carries only %.0f%% of the work under skew", 100*float64(busiest)/float64(total))
	}
	// The paper: "the computation was performed on two nodes while the
	// remaining four nodes were idle".
	if skewed.NodesUsed > 3 {
		t.Errorf("skewed placement kept %d nodes busy, expected ~2", skewed.NodesUsed)
	}
	// Spreading uses every node and improves utilization.
	if spread.NodesUsed != len(cfg.Nodes) {
		t.Errorf("round-robin used %d nodes", spread.NodesUsed)
	}
	if su, ku := spread.Utilization(cfg.TotalCores()), skewed.Utilization(cfg.TotalCores()); su <= ku {
		t.Errorf("utilization did not improve: spread %.2f vs skewed %.2f", su, ku)
	}
}

func TestRemoteTasksCounted(t *testing.T) {
	cfg := testCluster()
	sizes := SplitBytes(6e9, 64)
	rep, err := Run(cfg, PlaceBlocks(sizes, PlaceAllOnOne, len(cfg.Nodes)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.RemoteTasks == 0 {
		t.Error("no remote tasks under all-on-one placement")
	}
	local, err := Run(cfg, PlaceBlocks(sizes, PlaceRoundRobin, len(cfg.Nodes)))
	if err != nil {
		t.Fatal(err)
	}
	if local.RemoteTasks > rep.RemoteTasks {
		t.Errorf("round-robin has more remote tasks (%d) than skewed (%d)", local.RemoteTasks, rep.RemoteTasks)
	}
}

func TestReduceTimeNegligible(t *testing.T) {
	// Fusing per-task schemas is "a fast operation as each schema to
	// fuse has a very small size" (Section 6.2).
	cfg := testCluster()
	sizes := SplitBytes(22e9, 128)
	rep, err := Run(cfg, PlaceBlocks(sizes, PlaceRoundRobin, len(cfg.Nodes)))
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(rep.ReduceTime) / float64(rep.Makespan); frac > 0.05 {
		t.Errorf("reduce is %.1f%% of the makespan, should be negligible", frac*100)
	}
}

func TestRunPartitioned(t *testing.T) {
	cfg := testCluster()
	// Four partitions in the style of Table 8.
	parts := [][]int64{
		SplitBytes(5200e6, 16),
		SplitBytes(5500e6, 16),
		SplitBytes(5500e6, 16),
		SplitBytes(5500e6, 16),
	}
	reports, finalFuse, err := RunPartitioned(cfg, parts)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("got %d reports", len(reports))
	}
	for i, rep := range reports {
		if rep.RemoteTasks != 0 {
			t.Errorf("partition %d read remotely", i)
		}
		if rep.NodesUsed != 1 {
			t.Errorf("partition %d used %d nodes", i, rep.NodesUsed)
		}
		if rep.MapTime <= 0 {
			t.Errorf("partition %d has zero map time", i)
		}
	}
	// The final fusion is vastly cheaper than any partition.
	if finalFuse >= reports[0].MapTime/100 {
		t.Errorf("final fuse %v not negligible vs %v", finalFuse, reports[0].MapTime)
	}
	// Partition times are commensurate (same data volume, same rate).
	if reports[1].MapTime != reports[2].MapTime {
		t.Errorf("equal partitions got different times: %v vs %v", reports[1].MapTime, reports[2].MapTime)
	}
}

func TestRunPartitionedTooManyPartitions(t *testing.T) {
	cfg := testCluster()
	parts := make([][]int64, len(cfg.Nodes)+1)
	for i := range parts {
		parts[i] = []int64{1000}
	}
	if _, _, err := RunPartitioned(cfg, parts); err == nil {
		t.Error("more partitions than nodes accepted")
	}
}

func TestSplitBytes(t *testing.T) {
	sizes := SplitBytes(10, 3)
	if len(sizes) != 3 || sizes[0]+sizes[1]+sizes[2] != 10 {
		t.Errorf("SplitBytes = %v", sizes)
	}
	for _, s := range sizes {
		if s < 3 || s > 4 {
			t.Errorf("uneven split: %v", sizes)
		}
	}
	if SplitBytes(10, 0) != nil {
		t.Error("SplitBytes(_, 0) should be nil")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testCluster()
	sizes := SplitBytes(7e9, 77)
	a, err := Run(cfg, PlaceBlocks(sizes, PlaceAllOnOne, 6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, PlaceBlocks(sizes, PlaceAllOnOne, 6))
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.RemoteTasks != b.RemoteTasks {
		t.Error("simulation is not deterministic")
	}
}

func TestMoreComputeShortensJob(t *testing.T) {
	sizes := SplitBytes(10e9, 64)
	slow, err := Run(PaperCluster(10), PlaceBlocks(sizes, PlaceRoundRobin, 6))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(PaperCluster(40), PlaceBlocks(sizes, PlaceRoundRobin, 6))
	if err != nil {
		t.Fatal(err)
	}
	if fast.Makespan >= slow.Makespan {
		t.Errorf("4x compute rate did not shorten the job: %v vs %v", fast.Makespan, slow.Makespan)
	}
}

func TestPlacementString(t *testing.T) {
	if PlaceAllOnOne.String() != "all-on-one-node" || PlaceRoundRobin.String() != "round-robin" {
		t.Error("placement names wrong")
	}
	if s := Placement(9).String(); !strings.Contains(s, "9") {
		t.Errorf("unknown placement = %q", s)
	}
}

func TestUtilizationBounds(t *testing.T) {
	cfg := testCluster()
	rep, err := Run(cfg, PlaceBlocks(SplitBytes(12e9, 120), PlaceRoundRobin, 6))
	if err != nil {
		t.Fatal(err)
	}
	u := rep.Utilization(cfg.TotalCores())
	if u <= 0 || u > 1.0001 {
		t.Errorf("utilization = %v out of range", u)
	}
	if (Report{}).Utilization(cfg.TotalCores()) != 0 {
		t.Error("empty report utilization should be 0")
	}
}

func TestReplicationValidation(t *testing.T) {
	cfg := testCluster()
	if _, err := Run(cfg, []Block{{Bytes: 1, Node: 0, Extra: []int{99}}}); err == nil {
		t.Error("replica on unknown node accepted")
	}
}

func TestPlaceBlocksReplicated(t *testing.T) {
	blocks := PlaceBlocksReplicated(SplitBytes(6e9, 30), PlaceAllOnOne, 6, 3)
	for i, b := range blocks {
		if b.Node != 0 {
			t.Fatalf("block %d primary on node %d", i, b.Node)
		}
		if len(b.Extra) != 2 {
			t.Fatalf("block %d has %d extra replicas", i, len(b.Extra))
		}
		seen := map[int]bool{b.Node: true}
		for _, e := range b.Extra {
			if seen[e] {
				t.Fatalf("block %d has duplicate replica node %d", i, e)
			}
			seen[e] = true
		}
	}
	// Replication factor is clamped to the node count and to >= 1.
	if got := PlaceBlocksReplicated(SplitBytes(1e6, 2), PlaceAllOnOne, 3, 9); len(got[0].Extra) != 2 {
		t.Errorf("replicas not clamped to node count: %d extras", len(got[0].Extra))
	}
	if got := PlaceBlocksReplicated(SplitBytes(1e6, 2), PlaceAllOnOne, 3, 0); len(got[0].Extra) != 0 {
		t.Errorf("replicas not clamped to 1: %d extras", len(got[0].Extra))
	}
}

func TestReplicationRescuesSkewedPlacement(t *testing.T) {
	// The Table 7 pathology presumes an effective replication factor of
	// 1: with HDFS's default 3 copies, most blocks have a local replica
	// somewhere even when every primary sits on one node.
	cfg := testCluster()
	sizes := SplitBytes(22e9, 128)
	var makespans []time.Duration
	var nodesUsed []int
	for _, k := range []int{1, 2, 3} {
		rep, err := Run(cfg, PlaceBlocksReplicated(sizes, PlaceAllOnOne, len(cfg.Nodes), k))
		if err != nil {
			t.Fatal(err)
		}
		makespans = append(makespans, rep.Makespan)
		nodesUsed = append(nodesUsed, rep.NodesUsed)
	}
	if !(makespans[1] < makespans[0] && makespans[2] <= makespans[1]) {
		t.Errorf("makespans not improving with replication: %v", makespans)
	}
	if nodesUsed[2] <= nodesUsed[0] {
		t.Errorf("replication did not spread the work: %v", nodesUsed)
	}
	// At 3x the skew penalty is mostly gone: within 1.5x of the
	// round-robin ideal.
	ideal, err := Run(cfg, PlaceBlocks(sizes, PlaceRoundRobin, len(cfg.Nodes)))
	if err != nil {
		t.Fatal(err)
	}
	if float64(makespans[2]) > 1.5*float64(ideal.Makespan) {
		t.Errorf("3x replication still %.1fx slower than ideal", float64(makespans[2])/float64(ideal.Makespan))
	}
}

func TestRecorderObservesSimulation(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := PaperCluster(30)
	cfg.Recorder = reg
	rep, err := Run(cfg, PlaceBlocks(SplitBytes(1e9, 16), PlaceRoundRobin, len(cfg.Nodes)))
	if err != nil {
		t.Fatal(err)
	}
	m := reg.Snapshot()
	if m.Counters["cluster_tasks"] != int64(rep.Tasks) {
		t.Errorf("cluster_tasks = %d, want %d", m.Counters["cluster_tasks"], rep.Tasks)
	}
	if m.Gauges["cluster_makespan_virtual"] != int64(rep.Makespan) {
		t.Errorf("cluster_makespan_virtual = %d, want %d", m.Gauges["cluster_makespan_virtual"], rep.Makespan)
	}
	if m.Gauges["cluster_nodes_used"] != int64(rep.NodesUsed) {
		t.Errorf("cluster_nodes_used = %d, want %d", m.Gauges["cluster_nodes_used"], rep.NodesUsed)
	}
	// Virtual readings are deterministic and must survive the timing
	// filter.
	if _, ok := m.WithoutTimings().Gauges["cluster_makespan_virtual"]; !ok {
		t.Error("virtual makespan stripped by WithoutTimings")
	}
}

func TestNodeCrashRetriesTasksElsewhere(t *testing.T) {
	// Two 2-core nodes, blocks spread round-robin. Node 1 fail-stops
	// mid-phase: its in-flight attempts die, their blocks re-execute on
	// node 0, and every byte is still processed.
	cfg := Config{
		Nodes: []Node{
			{Name: "a", Cores: 2, NetMBps: 100},
			{Name: "b", Cores: 2, NetMBps: 100, CrashAt: 5 * time.Second},
		},
		ComputeMBps: 10,
	}
	// Eight 100 MB blocks: 10 s each on a core, so node b's attempts
	// are guaranteed to be running when it crashes at t=5s.
	sizes := make([]int64, 8)
	for i := range sizes {
		sizes[i] = 100e6
	}
	blocks := PlaceBlocks(sizes, PlaceRoundRobin, 2)
	var total int64
	for _, b := range blocks {
		total += b.Bytes
	}
	rep, err := Run(cfg, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BytesProcessed != total {
		t.Errorf("BytesProcessed = %d, want %d: crash lost data", rep.BytesProcessed, total)
	}
	if rep.RetriedTasks == 0 {
		t.Error("RetriedTasks = 0, want > 0: node b crashed with tasks in flight")
	}
	if rep.LostTime <= 0 {
		t.Errorf("LostTime = %v, want > 0", rep.LostTime)
	}
	if rep.CrashedNodes != 1 {
		t.Errorf("CrashedNodes = %d, want 1", rep.CrashedNodes)
	}

	// The same job on a healthy cluster is strictly faster and loses
	// nothing.
	healthy := cfg
	healthy.Nodes = []Node{
		{Name: "a", Cores: 2, NetMBps: 100},
		{Name: "b", Cores: 2, NetMBps: 100},
	}
	href, err := Run(healthy, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if href.RetriedTasks != 0 || href.LostTime != 0 || href.CrashedNodes != 0 {
		t.Errorf("healthy run reports fault handling: %+v", href)
	}
	if rep.Makespan <= href.Makespan {
		t.Errorf("crashed makespan %v should exceed healthy makespan %v", rep.Makespan, href.Makespan)
	}
}

func TestNodeCrashDeterministic(t *testing.T) {
	cfg := testCluster()
	cfg.Nodes[2].CrashAt = 3 * time.Second
	blocks := PlaceBlocks(SplitBytes(5e9, 40), PlaceRoundRobin, len(cfg.Nodes))
	first, err := Run(cfg, blocks)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Run(cfg, blocks)
		if err != nil {
			t.Fatal(err)
		}
		if again.Makespan != first.Makespan || again.RetriedTasks != first.RetriedTasks || again.LostTime != first.LostTime {
			t.Fatalf("run %d differs: %+v vs %+v", i, again, first)
		}
	}
}

func TestAllNodesCrashedFailsJob(t *testing.T) {
	cfg := Config{
		Nodes: []Node{
			{Name: "a", Cores: 1, NetMBps: 100, CrashAt: time.Second},
			{Name: "b", Cores: 1, NetMBps: 100, CrashAt: 2 * time.Second},
		},
		ComputeMBps: 10,
	}
	// 100 MB = 10 s per block: no block can finish before every node dies.
	_, err := Run(cfg, PlaceBlocks([]int64{100e6, 100e6}, PlaceRoundRobin, 2))
	if err == nil {
		t.Fatal("job with every node crashed should fail")
	}
	if !strings.Contains(err.Error(), "unprocessed") {
		t.Errorf("err = %v, should count unprocessed blocks", err)
	}
}

func TestCrashMetricsRecorded(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{
		Nodes: []Node{
			{Name: "a", Cores: 2, NetMBps: 100},
			{Name: "b", Cores: 2, NetMBps: 100, CrashAt: 5 * time.Second},
		},
		ComputeMBps: 10,
		Recorder:    reg,
	}
	sizes := make([]int64, 8)
	for i := range sizes {
		sizes[i] = 100e6
	}
	rep, err := Run(cfg, PlaceBlocks(sizes, PlaceRoundRobin, 2))
	if err != nil {
		t.Fatal(err)
	}
	m := reg.Snapshot()
	if got := m.Counters["cluster_retried_tasks"]; got != int64(rep.RetriedTasks) {
		t.Errorf("cluster_retried_tasks = %d, want %d", got, rep.RetriedTasks)
	}
	if got := m.Gauges["cluster_crashed_nodes"]; got != 1 {
		t.Errorf("cluster_crashed_nodes = %d, want 1", got)
	}
	if got := m.Gauges["cluster_retry_lost_virtual"]; got != int64(rep.LostTime) {
		t.Errorf("cluster_retry_lost_virtual = %d, want %d", got, rep.LostTime)
	}
	// Fault metrics survive WithoutTimings (they are deterministic
	// virtual readings) but are stripped by WithoutFaults.
	kept := m.WithoutTimings()
	if _, ok := kept.Gauges["cluster_retry_lost_virtual"]; !ok {
		t.Error("cluster_retry_lost_virtual stripped by WithoutTimings")
	}
	stripped := kept.WithoutFaults()
	for _, name := range []string{"cluster_retried_tasks"} {
		if _, ok := stripped.Counters[name]; ok {
			t.Errorf("%s survived WithoutFaults", name)
		}
	}
	if _, ok := stripped.Gauges["cluster_crashed_nodes"]; ok {
		t.Error("cluster_crashed_nodes survived WithoutFaults")
	}
	if _, ok := stripped.Gauges["cluster_retry_lost_virtual"]; ok {
		t.Error("cluster_retry_lost_virtual survived WithoutFaults")
	}
}
