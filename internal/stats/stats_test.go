package stats

import (
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Count() != 0 || s.Distinct() != 0 || s.MinSize() != 0 || s.MaxSize() != 0 || s.AvgSize() != 0 {
		t.Errorf("zero Summary not zero: %s", s.String())
	}
}

func TestSummaryAdd(t *testing.T) {
	var s Summary
	s.Add(types.MustParse("{a: Num}"))         // size 3
	s.Add(types.MustParse("{a: Num}"))         // duplicate
	s.Add(types.MustParse("{a: Num, b: Str}")) // size 5
	s.Add(types.Num)                           // size 1
	if s.Count() != 4 {
		t.Errorf("Count = %d", s.Count())
	}
	if s.Distinct() != 3 {
		t.Errorf("Distinct = %d", s.Distinct())
	}
	if s.MinSize() != 1 || s.MaxSize() != 5 {
		t.Errorf("Min/Max = %d/%d", s.MinSize(), s.MaxSize())
	}
	if got := s.AvgSize(); got != (3+3+5+1)/4.0 {
		t.Errorf("AvgSize = %v", got)
	}
}

func TestSummaryMerge(t *testing.T) {
	var a, b, whole Summary
	ts := []types.Type{
		types.MustParse("{a: Num}"),
		types.MustParse("{b: Str}"),
		types.MustParse("{a: Num}"),
		types.Num,
		types.MustParse("[Num, Str]"),
	}
	for i, tt := range ts {
		whole.Add(tt)
		if i%2 == 0 {
			a.Add(tt)
		} else {
			b.Add(tt)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Distinct() != whole.Distinct() ||
		a.MinSize() != whole.MinSize() || a.MaxSize() != whole.MaxSize() || a.AvgSize() != whole.AvgSize() {
		t.Errorf("merged %s != whole %s", a.String(), whole.String())
	}
}

func TestSummaryMergeEmpty(t *testing.T) {
	var a Summary
	a.Add(types.Num)
	a.Merge(nil)
	a.Merge(&Summary{})
	if a.Count() != 1 {
		t.Errorf("Count = %d after merging empties", a.Count())
	}
	var b Summary
	b.Merge(&a)
	if b.Count() != 1 || b.MinSize() != 1 {
		t.Errorf("empty.Merge(a) = %s", b.String())
	}
}

func TestTopTypes(t *testing.T) {
	var s Summary
	for i := 0; i < 5; i++ {
		s.Add(types.Num)
	}
	for i := 0; i < 3; i++ {
		s.Add(types.Str)
	}
	s.Add(types.Bool)
	top := s.TopTypes(2)
	if len(top) != 2 || top[0].Type != "Num" || top[0].Count != 5 || top[1].Type != "Str" {
		t.Errorf("TopTypes = %+v", top)
	}
	all := s.TopTypes(100)
	if len(all) != 3 {
		t.Errorf("TopTypes(100) has %d entries", len(all))
	}
}

func TestTopTypesDeterministicTieBreak(t *testing.T) {
	var s Summary
	s.Add(types.Str)
	s.Add(types.Num)
	top := s.TopTypes(2)
	if top[0].Type != "Num" || top[1].Type != "Str" {
		t.Errorf("tie break not lexicographic: %+v", top)
	}
}

func TestPropertyMergeOrderIrrelevant(t *testing.T) {
	mk := func(seed uint64) *Summary {
		var s Summary
		r := seed | 1
		for i := 0; i < int(seed%7); i++ {
			r ^= r << 13
			r ^= r >> 7
			r ^= r << 17
			switch r % 4 {
			case 0:
				s.Add(types.Num)
			case 1:
				s.Add(types.Str)
			case 2:
				s.Add(types.MustParse("{a: Num}"))
			default:
				s.Add(types.MustParse("[Str*]"))
			}
		}
		return &s
	}
	f := func(s1, s2, s3 uint64) bool {
		// (a+b)+c == a+(b+c), built from scratch both times since Merge
		// mutates the receiver.
		left1, left2, left3 := mk(s1), mk(s2), mk(s3)
		left1.Merge(left2)
		left1.Merge(left3)
		right2, right3 := mk(s2), mk(s3)
		right2.Merge(right3)
		right1 := mk(s1)
		right1.Merge(right2)
		return left1.String() == right1.String() && left1.Distinct() == right1.Distinct()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDistinctSizeSum(t *testing.T) {
	var s Summary
	s.Add(types.MustParse("{a: Num}"))         // size 3, first seen
	s.Add(types.MustParse("{a: Num}"))         // duplicate: not re-counted
	s.Add(types.MustParse("{a: Num, b: Str}")) // size 5
	if got := s.DistinctSizeSum(); got != 8 {
		t.Errorf("DistinctSizeSum = %d, want 8", got)
	}
	var other Summary
	other.Add(types.MustParse("{a: Num}")) // duplicate across summaries
	other.Add(types.Num)                   // size 1, new
	s.Merge(&other)
	if got := s.DistinctSizeSum(); got != 9 {
		t.Errorf("after merge DistinctSizeSum = %d, want 9", got)
	}
}

// TestMergeExemplarAdmissionDeterministic pins the fix for the
// map-order bug the monoidpure analyzer caught: when the exemplar cap
// binds during Merge, which renderings win the remaining slots must be
// a pure function of the two summaries, not of Go's randomized map
// iteration order. New exemplars are admitted in sorted-hash order, so
// repeated merges of identical inputs retain identical sets.
func TestMergeExemplarAdmissionDeterministic(t *testing.T) {
	defer func(old int) { maxExemplars = old }(maxExemplars)
	maxExemplars = 2

	mkOther := func() *Summary {
		var o Summary
		o.Add(types.MustParse("{a: Num}"))
		o.Add(types.MustParse("{b: Str}"))
		o.Add(types.MustParse("{c: Bool}"))
		o.Add(types.MustParse("{d: Null}"))
		return &o
	}
	mk := func() map[string]bool {
		var s Summary
		s.Merge(mkOther())
		got := make(map[string]bool)
		for _, tc := range s.TopTypes(10) {
			got[tc.Type] = true
		}
		if len(got) != 2 {
			t.Fatalf("retained %d exemplars, want cap 2", len(got))
		}
		return got
	}

	first := mk()
	for i := 0; i < 20; i++ {
		if got := mk(); len(got) != len(first) {
			t.Fatalf("run %d retained %d exemplars, first run %d", i, len(got), len(first))
		} else {
			for k := range got {
				if !first[k] {
					t.Fatalf("run %d retained %q, first run did not: %v vs %v", i, k, got, first)
				}
			}
		}
	}
}

// TestAddExemplarCap pins that Add also respects the effective cap.
func TestAddExemplarCap(t *testing.T) {
	defer func(old int) { maxExemplars = old }(maxExemplars)
	maxExemplars = 1
	var s Summary
	s.Add(types.MustParse("{a: Num}"))
	s.Add(types.MustParse("{b: Str}"))
	if got := len(s.TopTypes(10)); got != 1 {
		t.Fatalf("retained %d exemplars, want 1", got)
	}
	if s.Distinct() != 2 {
		t.Fatalf("Distinct = %d, want 2 (counting is uncapped)", s.Distinct())
	}
}
