// Package stats computes the measurements the paper reports in its
// evaluation (Tables 2-5 and 8): the number of distinct inferred types,
// the minimum, maximum and average size of those types, and the size of
// the fused type. Summaries are mergeable, so the map-reduce engine can
// compute them per partition and combine.
//
// Distinct types are counted by a 64-bit structural hash (types.Hash)
// instead of the canonical rendering, so memory stays bounded at the
// paper's 1M scale (Wikidata has 640K distinct types there; storing
// their renderings would cost hundreds of megabytes) and repeated types
// are never rendered at all. A bounded set of exemplar renderings is
// kept for reporting. Hash collisions would undercount distinct types;
// at 64 bits and <2^20 distinct types the collision probability is below
// 2^-24, far below the measurement noise the tables carry anyway.
package stats

import (
	"fmt"
	"sort"

	"repro/internal/types"
)

// MaxExemplars bounds how many distinct type renderings a Summary
// retains for TopTypes reporting.
const MaxExemplars = 10_000

// maxExemplars is the effective cap; tests shrink it to exercise the
// bounded-admission paths without building 10k distinct types.
var maxExemplars = MaxExemplars

// Summary accumulates the per-dataset measurements of Tables 2-5.
// The zero value is ready to use.
type Summary struct {
	count    int64
	sumSize  int64
	minSize  int
	maxSize  int
	distinct map[uint64]*distinctInfo
	// exemplars holds renderings for up to MaxExemplars distinct types.
	exemplars map[uint64]string
}

type distinctInfo struct {
	count int64
	size  int32
}

// Add records one inferred type.
func (s *Summary) Add(t types.Type) {
	size := t.Size()
	if s.count == 0 || size < s.minSize {
		s.minSize = size
	}
	if size > s.maxSize {
		s.maxSize = size
	}
	s.count++
	s.sumSize += int64(size)
	if s.distinct == nil {
		s.distinct = make(map[uint64]*distinctInfo)
		s.exemplars = make(map[uint64]string)
	}
	h := types.Hash(t)
	info := s.distinct[h]
	if info == nil {
		info = &distinctInfo{size: int32(size)}
		s.distinct[h] = info
		if len(s.exemplars) < maxExemplars {
			// Render only first-seen types that we actually retain.
			s.exemplars[h] = t.String()
		}
	}
	info.count++
}

// Merge folds other into s. Merging is commutative and associative, so
// summaries reduce in any order, like the types themselves.
func (s *Summary) Merge(other *Summary) {
	if other == nil || other.count == 0 {
		return
	}
	if s.count == 0 || other.minSize < s.minSize {
		s.minSize = other.minSize
	}
	if other.maxSize > s.maxSize {
		s.maxSize = other.maxSize
	}
	s.count += other.count
	s.sumSize += other.sumSize
	if s.distinct == nil {
		s.distinct = make(map[uint64]*distinctInfo)
		s.exemplars = make(map[uint64]string)
	}
	var newExemplars []uint64
	for h, oInfo := range other.distinct {
		info := s.distinct[h]
		if info == nil {
			s.distinct[h] = &distinctInfo{count: oInfo.count, size: oInfo.size}
			if _, ok := other.exemplars[h]; ok {
				newExemplars = append(newExemplars, h)
			}
			continue
		}
		info.count += oInfo.count
	}
	// Admit newly-seen exemplars in sorted-hash order: when the cap
	// binds, which renderings win the remaining slots must not depend on
	// Go's randomized map iteration order, or two runs over the same
	// partitioning report different TopTypes (caught by the monoidpure
	// analyzer via plainAcc.Merge).
	sort.Slice(newExemplars, func(i, j int) bool { return newExemplars[i] < newExemplars[j] })
	for _, h := range newExemplars {
		if len(s.exemplars) >= maxExemplars {
			break
		}
		s.exemplars[h] = other.exemplars[h]
	}
}

// Count reports the number of types recorded.
func (s *Summary) Count() int64 { return s.count }

// Distinct reports the number of distinct types recorded, the "# types"
// column of Tables 2-5.
func (s *Summary) Distinct() int { return len(s.distinct) }

// DistinctSizeSum reports the total size of all distinct types (each
// counted once) — the cost of the naive "union of all distinct types"
// schema the succinctness ablation compares against.
func (s *Summary) DistinctSizeSum() int64 {
	var total int64
	for _, info := range s.distinct {
		total += int64(info.size)
	}
	return total
}

// MinSize reports the smallest recorded type size (0 when empty).
func (s *Summary) MinSize() int {
	if s.count == 0 {
		return 0
	}
	return s.minSize
}

// MaxSize reports the largest recorded type size (0 when empty).
func (s *Summary) MaxSize() int { return s.maxSize }

// AvgSize reports the mean recorded type size (0 when empty).
func (s *Summary) AvgSize() float64 {
	if s.count == 0 {
		return 0
	}
	return float64(s.sumSize) / float64(s.count)
}

// TopTypes returns the n most frequent distinct types with their
// occurrence counts, most frequent first; ties break by rendering so
// the output is deterministic. Only types with retained exemplars are
// reported (the first MaxExemplars distinct types seen).
func (s *Summary) TopTypes(n int) []TypeCount {
	out := make([]TypeCount, 0, len(s.exemplars))
	for h, repr := range s.exemplars {
		out = append(out, TypeCount{Type: repr, Count: s.distinct[h].count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Type < out[j].Type
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// TypeCount pairs a type rendering with its number of occurrences.
type TypeCount struct {
	Type  string
	Count int64
}

// String renders the summary as a compact one-line report.
func (s *Summary) String() string {
	return fmt.Sprintf("count=%d distinct=%d min=%d max=%d avg=%.1f",
		s.count, s.Distinct(), s.MinSize(), s.MaxSize(), s.AvgSize())
}
