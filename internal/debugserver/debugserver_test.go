package debugserver

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestPublishIsIdempotentAndSwappable(t *testing.T) {
	Publish("debugserver_test_var", func() any { return 1 })
	Publish("debugserver_test_var", func() any { return 2 }) // must not panic

	ts := httptest.NewServer(Handler())
	defer ts.Close()

	get := func() map[string]any {
		t.Helper()
		resp, err := http.Get(ts.URL + "/debug/vars")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}

	if got := get()["debugserver_test_var"]; got != float64(2) {
		t.Errorf("published value = %v, want 2", got)
	}
	Publish("debugserver_test_var", nil)
	if got := get()["debugserver_test_var"]; got != nil {
		t.Errorf("unpublished value = %v, want null", got)
	}
}

func TestPublishConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			Publish(fmt.Sprintf("debugserver_test_conc_%d", i%4), func() any { return i })
		}(i)
	}
	wg.Wait()
}

func TestStartServesVarsAndPprof(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for _, path := range []string{"/debug/vars", "/debug/pprof/cmdline"} {
		resp, err := http.Get("http://" + s.Addr().String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatalf("close %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	if s.URL() == "" {
		t.Error("empty URL")
	}
}

func TestStartListenError(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := Start(s.Addr().String()); err == nil {
		t.Error("second Start on the same address succeeded")
	}
}
