// Package debugserver is the shared -debug-addr implementation behind
// cmd/jsoninfer and cmd/schemad: an HTTP server exposing /debug/vars
// (expvar, including any process-wide variables published with
// Publish) and /debug/pprof on an operator-chosen address.
//
// The package exists because expvar.Publish is process-global and
// panics on duplicate names, which makes naive per-run registration
// (and per-test registration) blow up. Publish here is idempotent:
// the first call for a name registers an expvar.Func indirection, and
// later calls swap the function it reads — so a CLI that runs several
// inferences, or a test that starts several servers, republishes
// freely.
package debugserver

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

var (
	mu   sync.Mutex
	vars = make(map[string]func() any)
)

// Publish exposes fn as the expvar variable name. The first call for a
// name registers it with the process-global expvar table; subsequent
// calls replace the function the variable reads. fn must be safe to
// call from any goroutine at any time; a nil fn unpublishes the value
// (the variable renders as null).
func Publish(name string, fn func() any) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := vars[name]; !ok {
		expvar.Publish(name, expvar.Func(func() any {
			mu.Lock()
			f := vars[name]
			mu.Unlock()
			if f == nil {
				return nil
			}
			return f()
		}))
	}
	vars[name] = fn
}

// Handler returns the debug mux: /debug/vars plus the /debug/pprof
// family. Servers that already listen elsewhere (tests, embedding)
// can mount it directly instead of calling Start.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// A Server is a running debug server. Stop it with Close.
type Server struct {
	srv  *http.Server
	addr net.Addr
}

// Start serves the debug Handler on addr until Close. A failure to
// listen (address in use, bad syntax) is returned synchronously — the
// caller decides whether a dead debug endpoint should abort its run.
// The actual listening address is available from Addr (useful with
// ":0").
func Start(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug server: %w", err)
	}
	srv := &http.Server{Handler: Handler()}
	go serve(srv, ln)
	return &Server{srv: srv, addr: ln.Addr()}, nil
}

// serve runs the accept loop; it returns http.ErrServerClosed once
// Close runs, and any earlier error means the listener died — which
// Close surfaces.
func serve(srv *http.Server, ln net.Listener) {
	_ = srv.Serve(ln)
}

// Addr returns the server's listening address.
func (s *Server) Addr() net.Addr { return s.addr }

// URL returns the address of the expvar endpoint, for announcing on
// stderr.
func (s *Server) URL() string {
	return fmt.Sprintf("http://%s/debug/vars", s.addr)
}

// Close stops the server immediately, closing the listener and any
// active connections. Debug traffic is advisory; there is nothing to
// drain.
func (s *Server) Close() error {
	return s.srv.Close()
}
