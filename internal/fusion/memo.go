package fusion

import (
	"sync"
	"sync/atomic"

	"repro/internal/intern"
	"repro/internal/types"
)

// Memo is a fusion policy with memoized Fuse and Simplify: results are
// cached by the interned identity of the operands, so each distinct
// pair of types fuses at most once per run. Operands and results are
// canonicalized in the memo's intern.Table, which is what makes the
// cache key sound — within one table, equal IDs mean structurally equal
// types, and Fuse is a function of the operands' structure.
//
// The fuse cache is keyed by the UNORDERED pair of IDs: Fuse is
// commutative (Theorem 5.4 of the paper), fuse(T1, T2) ≡ fuse(T2, T1),
// so normalizing the key to (min ID, max ID) lets both orders share one
// slot. Equal IDs share the (id, id) slot like any other pair — they are
// NOT short-circuited to the operand, because fusion is idempotent only
// on simplified types (fusing a positional tuple with itself simplifies
// it away), and the memo must be correct for arbitrary operands.
//
// The memo hook sits on the policy's internal fuse/simplify dispatch,
// so recursive sub-fusions (record fields, array elements, union
// alternatives) are memoized individually, not just top-level calls.
// A Memo is safe for concurrent use; the caches only grow. Results are
// computed outside the cache lock (fusion re-enters the memo for
// children), so two workers can race to compute the same entry — the
// first insert wins and the loser's structurally identical result is
// dropped, which keeps results canonical and byte-identical either way.
type Memo struct {
	pol policy
	tab *intern.Table

	mu        sync.RWMutex
	fuseCache map[fuseKey]types.Type
	simpCache map[intern.ID]types.Type

	fuseHits, fuseMisses atomic.Int64
	simpHits, simpMisses atomic.Int64
}

// fuseKey is the normalized (a <= b) ID pair of a fuse cache entry.
type fuseKey struct{ a, b intern.ID }

// NewMemo returns a memoized fusion policy over the given intern table.
// The table may be shared with the decoding phase (the dedup pipeline
// does exactly that), so types interned during decoding are cache keys
// without further canonicalization.
func NewMemo(o Options, tab *intern.Table) *Memo {
	m := &Memo{
		tab:       tab,
		fuseCache: make(map[fuseKey]types.Type, 256),
		simpCache: make(map[intern.ID]types.Type, 256),
	}
	m.pol = policy{par: o.params(), memo: m}
	return m
}

// Table returns the memo's intern table.
func (m *Memo) Table() *intern.Table { return m.tab }

// Fuse merges two types under the memo's policy. The result is the
// canonical representative of exactly what the un-memoized policy
// would return (byte-identical rendering), pinned by the differential
// tests at the repository root.
func (m *Memo) Fuse(t1, t2 types.Type) types.Type { return m.pol.fuse(t1, t2) }

// Simplify rewrites array types into the policy's canonical form, with
// per-distinct-type caching.
func (m *Memo) Simplify(t types.Type) types.Type { return m.pol.simplify(t) }

// Finalize lowers intermediate tagged-union states (see
// Options.Finalize). It runs un-memoized — the pipeline calls it once
// per fold, on the final accumulated type, and its inputs need not be
// canonical.
func (m *Memo) Finalize(t types.Type) types.Type {
	if !hasVariants(t) {
		return t
	}
	return policy{par: m.pol.par}.finalize(t)
}

// CacheStats reports the memo's cache counters. Deterministic on a
// single-worker fault-free run; under concurrency two workers may race
// to compute the same entry and the split between hits and misses can
// vary (the obs WithoutCache stripper exists for exactly this).
func (m *Memo) CacheStats() (fuseHits, fuseMisses, simplifyHits, simplifyMisses int64) {
	return m.fuseHits.Load(), m.fuseMisses.Load(), m.simpHits.Load(), m.simpMisses.Load()
}

// fuse is the memo hook behind policy.fuse.
func (m *Memo) fuse(p policy, t1, t2 types.Type) types.Type {
	r1, ok1 := m.tab.Ref(t1)
	r2, ok2 := m.tab.Ref(t2)
	if !ok1 || !ok2 {
		// Foreign operands: canonicalize once, then fuse their
		// representatives so the result lands in the cache.
		return m.fuse(p, m.tab.Canon(t1), m.tab.Canon(t2))
	}
	// Equal IDs are NOT short-circuited to the operand: fusion is
	// idempotent only on simplified types (fuse of a positional tuple
	// with itself simplifies it away), so fuse(T, T) is computed once via
	// the (id, id) cache slot like any other pair.
	k := fuseKey{r1.ID, r2.ID}
	if k.a > k.b {
		// Commutativity: (a, b) and (b, a) share one slot.
		k.a, k.b = k.b, k.a
	}
	m.mu.RLock()
	res, ok := m.fuseCache[k]
	m.mu.RUnlock()
	if ok {
		m.fuseHits.Add(1)
		return res
	}
	// Compute outside the lock: fuseDirect re-enters this memo for
	// children, so holding the lock here would deadlock.
	//lint:ignore monoidpure re-entering the memo through the policy writes the lock-protected cache; cache entries are canonical and idempotent (same key always stores the same value), so the write cannot alter any fusion result
	res = m.tab.Canon(p.fuseDirect(t1, t2))
	m.mu.Lock()
	if prev, raced := m.fuseCache[k]; raced {
		m.mu.Unlock()
		m.fuseHits.Add(1)
		return prev
	}
	m.fuseCache[k] = res
	m.mu.Unlock()
	m.fuseMisses.Add(1)
	return res
}

// simplify is the memo hook behind policy.simplify.
func (m *Memo) simplify(p policy, t types.Type) types.Type {
	r, ok := m.tab.Ref(t)
	if !ok {
		return m.simplify(p, m.tab.Canon(t))
	}
	m.mu.RLock()
	res, hit := m.simpCache[r.ID]
	m.mu.RUnlock()
	if hit {
		m.simpHits.Add(1)
		return res
	}
	//lint:ignore monoidpure re-entering the memo through the policy writes the lock-protected cache; cache entries are canonical and idempotent, so the write cannot alter any simplification result
	res = m.tab.Canon(p.simplifyDirect(t))
	m.mu.Lock()
	if prev, raced := m.simpCache[r.ID]; raced {
		m.mu.Unlock()
		m.simpHits.Add(1)
		return prev
	}
	m.simpCache[r.ID] = res
	m.mu.Unlock()
	m.simpMisses.Add(1)
	return res
}
