package fusion

import (
	"sync"
	"testing"

	"repro/internal/infer"
	"repro/internal/intern"
	"repro/internal/types"
)

// memoOptions are the policies the pipeline can run under; the memo must
// agree with the direct algorithm under each.
var memoOptions = []Options{
	{},
	{PreserveTuples: true},
	{PreserveTuples: true, MaxTupleLen: 2},
}

// TestMemoMatchesDirect is the memo's soundness property: for random
// normal types, the memoized Fuse and Simplify return types structurally
// identical (and identically rendered) to the un-memoized policy, under
// every Options value — including fuse(T, T), which must simplify
// tuples exactly like the direct algorithm does.
func TestMemoMatchesDirect(t *testing.T) {
	for _, o := range memoOptions {
		m := NewMemo(o, intern.NewTable())
		r := &rng{s: 11}
		for i := 0; i < 300; i++ {
			a := randomNormalType(r)
			b := randomNormalType(r)
			for _, pair := range [][2]types.Type{{a, b}, {b, a}, {a, a}} {
				want := o.Fuse(pair[0], pair[1])
				got := m.Fuse(pair[0], pair[1])
				if !types.Equal(want, got) || want.String() != got.String() {
					t.Fatalf("opts %+v: memo fuse %s, direct %s", o, got, want)
				}
			}
			if want, got := o.Simplify(a), m.Simplify(a); !types.Equal(want, got) || want.String() != got.String() {
				t.Fatalf("opts %+v: memo simplify %s, direct %s", o, got, want)
			}
		}
	}
}

// TestMemoIdempotentOnSimplified checks the algebraic fact the dedup
// pipeline leans on (absorption): for SIMPLIFIED types, fuse(T, T) = T
// under every policy, so re-fusing an already-seen distinct type is a
// no-op and the streaming path may skip it.
func TestMemoIdempotentOnSimplified(t *testing.T) {
	for _, o := range memoOptions {
		m := NewMemo(o, intern.NewTable())
		r := &rng{s: 23}
		for i := 0; i < 200; i++ {
			s := m.Simplify(randomNormalType(r))
			if got := m.Fuse(s, s); !types.Equal(got, s) {
				t.Fatalf("opts %+v: fuse(T, T) = %s, want T = %s", o, got, s)
			}
			acc := m.Fuse(randomNormalType(r), s)
			if got := m.Fuse(acc, s); !types.Equal(got, acc) {
				t.Fatalf("opts %+v: absorption failed: fuse(fuse(A,s),s) = %s, want %s", o, got, acc)
			}
		}
	}
}

// TestMemoCacheStats: on a single-goroutine run the counters are exact —
// the second identical fuse is a hit, and commutativity makes the
// swapped order hit the same slot.
func TestMemoCacheStats(t *testing.T) {
	m := NewMemo(Options{}, intern.NewTable())
	a := infer.Infer(randomValue(&rng{s: 5}, 3))
	b := infer.Infer(randomValue(&rng{s: 9}, 3))
	m.Fuse(a, b)
	_, missesAfterFirst, _, _ := m.CacheStats()
	m.Fuse(a, b)
	m.Fuse(b, a) // commutative: same normalized key
	hits, misses, _, _ := m.CacheStats()
	if misses != missesAfterFirst {
		t.Fatalf("repeat fuses added misses: %d -> %d", missesAfterFirst, misses)
	}
	if hits < 2 {
		t.Fatalf("expected >= 2 top-level hits, got %d", hits)
	}

	m.Simplify(a)
	_, _, sh0, sm0 := m.CacheStats()
	m.Simplify(a)
	_, _, sh1, sm1 := m.CacheStats()
	if sm1 != sm0 || sh1 != sh0+1 {
		t.Fatalf("simplify memo not hit: hits %d->%d misses %d->%d", sh0, sh1, sm0, sm1)
	}
}

// TestMemoForeignOperands: operands interned in a DIFFERENT table (or
// never interned) are canonicalized on entry, so mixing tables cannot
// corrupt the cache.
func TestMemoForeignOperands(t *testing.T) {
	m := NewMemo(Options{}, intern.NewTable())
	other := intern.NewTable()
	a := other.Canon(infer.Infer(randomValue(&rng{s: 31}, 3)))
	b := infer.Infer(randomValue(&rng{s: 37}, 3))
	want := Fuse(a, b)
	if got := m.Fuse(a, b); !types.Equal(want, got) {
		t.Fatalf("foreign operands: memo %s, direct %s", got, want)
	}
}

// TestMemoConcurrent races many goroutines through one memo (run under
// -race); all must observe structurally identical results.
func TestMemoConcurrent(t *testing.T) {
	m := NewMemo(Options{}, intern.NewTable())
	base := &rng{s: 77}
	ts := make([]types.Type, 24)
	for i := range ts {
		ts[i] = infer.Infer(randomValue(base, 3))
	}
	want := make([]string, len(ts))
	for i := range ts {
		want[i] = Fuse(ts[i], ts[(i+1)%len(ts)]).String()
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ts {
				if got := m.Fuse(ts[i], ts[(i+1)%len(ts)]).String(); got != want[i] {
					t.Errorf("concurrent fuse %d: got %s want %s", i, got, want[i])
				}
			}
		}()
	}
	wg.Wait()
}
