// Package fusion implements the second phase of the paper's approach
// (Section 5.2): the binary type-fusion operator of Figures 5 and 6 and
// its n-ary folds. Fuse computes a compact supertype of its two inputs
// by collapsing structure they share:
//
//   - identical basic types collapse, different kinds meet in a union;
//   - record types merge field-wise: matching keys fuse recursively and
//     keep the smaller cardinality (? < 1), unmatched keys become
//     optional (rules R1 and R2 of Section 2);
//   - array types are first simplified — collapse replaces a positional
//     tuple type by the fusion of its element types — and then fused
//     element-wise into a repeated type [T*].
//
// Fuse is correct (Theorem 5.2: both inputs are subtypes of the result),
// commutative (Theorem 5.4) and associative (Theorem 5.5) on normal
// types, which is what lets the reduce phase apply it in any order and in
// parallel. The package's property tests check all three theorems.
//
// The package-level functions implement the paper's algorithm exactly;
// Options provides the positional-array extension sketched in the
// paper's conclusion (see options.go).
package fusion

import (
	"fmt"

	"repro/internal/types"
)

// Fuse merges two types of arbitrary shape, the function Fuse(T1, T2) of
// Figure 6 (line 1). Union addends of matching kind are fused pairwise
// with LFuse (the paper's KMatch set), addends whose kind appears on only
// one side are copied unchanged (KUnmatch), and the results are rebuilt
// into a union with ⊕.
//
// Inputs are expected to be normal types (each kind at most once per
// union, the invariant all our algorithms maintain); if a non-normal
// union slips in, same-kind addends are folded together first, which
// keeps Fuse total and still yields a supertype.
func Fuse(t1, t2 types.Type) types.Type { return policy{}.fuse(t1, t2) }

// LFuse fuses two non-union types of the same kind (Figure 6, lines 2-7).
// Calling it with types of different kinds is a programming error.
func LFuse(t1, t2 types.Type) types.Type { return policy{}.lfuse(t1, t2) }

// Collapse implements lines 8-9 of Figure 6: the simplification that
// prepares a positional array type for fusion by over-approximating all
// element types with their fusion. The empty tuple collapses to ε, so
// the simplified form of [] is [ε*], which denotes exactly the empty
// array (footnote 1 of the paper).
func Collapse(t *types.Tuple) types.Type { return policy{}.collapse(t) }

// Simplify rewrites every tuple array type inside t into its simplified
// repeated form [collapse(...)​*]. Phase one of the paper infers tuple
// types; fusing a type with itself would simplify it too, but Simplify
// does it directly and is what the pipeline applies when a partition
// contains a single value.
func Simplify(t types.Type) types.Type { return policy{}.simplify(t) }

// FuseAll folds Fuse over ts from the left, returning ε for an empty
// slice. By Theorems 5.4 and 5.5 any other fold shape yields the same
// result; the map-reduce engine exploits exactly this freedom.
func FuseAll(ts []types.Type) types.Type {
	acc := types.Type(types.Empty)
	for _, t := range ts {
		acc = Fuse(acc, t)
	}
	return acc
}

// FuseAllTree folds Fuse over ts as a balanced binary tree, the shape a
// parallel reduction produces. It returns ε for an empty slice. Beyond
// parallelism, the tree shape is also asymptotically cheaper on
// fusion-hostile data (see the reduce-shape ablation): a sequential fold
// fuses every small type into one ever-growing accumulator.
func FuseAllTree(ts []types.Type) types.Type {
	switch len(ts) {
	case 0:
		return types.Empty
	case 1:
		return ts[0]
	default:
		mid := len(ts) / 2
		return Fuse(FuseAllTree(ts[:mid]), FuseAllTree(ts[mid:]))
	}
}

// fuse implements Fuse under a policy, routing through the memo cache
// when one is installed (see Memo). All recursive fusion goes through
// here, so sub-fusions are memoized too.
func (p policy) fuse(t1, t2 types.Type) types.Type {
	if p.memo != nil {
		return p.memo.fuse(p, t1, t2)
	}
	return p.fuseDirect(t1, t2)
}

// fuseDirect implements Fuse under a policy, with no caching.
func (p policy) fuseDirect(t1, t2 types.Type) types.Type {
	g1 := p.groupByKind(t1)
	g2 := p.groupByKind(t2)
	out := make([]types.Type, 0, 6)
	for k := 0; k < 6; k++ {
		a, b := g1[k], g2[k]
		switch {
		case a != nil && b != nil:
			out = append(out, p.lfuse(a, b))
		case a != nil:
			out = append(out, a)
		case b != nil:
			out = append(out, b)
		}
	}
	return types.MustUnion(out...)
}

// groupByKind buckets the non-union addends of t by kind, folding
// same-kind addends with lfuse so each bucket holds at most one type.
func (p policy) groupByKind(t types.Type) [6]types.Type {
	var g [6]types.Type
	for _, u := range types.Addends(t) {
		k, ok := types.KindOf(u)
		if !ok {
			// Addends never returns unions or ε for canonical types.
			panic(fmt.Sprintf("fusion: non-canonical union addend %T", u))
		}
		if g[k] == nil {
			g[k] = u
		} else {
			g[k] = p.lfuse(g[k], u)
		}
	}
	return g
}

// lfuse implements LFuse under a policy.
func (p policy) lfuse(t1, t2 types.Type) types.Type {
	k1, ok1 := types.KindOf(t1)
	k2, ok2 := types.KindOf(t2)
	if !ok1 || !ok2 || k1 != k2 {
		panic(fmt.Sprintf("fusion: LFuse on kinds %v and %v", t1, t2))
	}
	switch k1 {
	case types.KindNull, types.KindBool, types.KindNum, types.KindStr:
		// Line 2: two basic types of the same kind are the same type.
		return t1
	case types.KindRecord:
		return p.fuseRecordKind(t1, t2)
	default: // types.KindArray
		return p.fuseArrays(t1, t2)
	}
}

// fuseRecordKind dispatches the record kind: two plain records use the
// paper's field-wise rule; once either side is an abstracted map type
// {*: T} (the key-abstraction extension), the result stays a map, with
// every other shape's field contents folded into the element type (key
// abstraction wins over tagging); variants types merge tag-wise with
// each other and absorb plain records into Other (see tagged.go).
func (p policy) fuseRecordKind(t1, t2 types.Type) types.Type {
	r1, ok1 := t1.(*types.Record)
	r2, ok2 := t2.(*types.Record)
	if ok1 && ok2 {
		return p.fuseRecords(r1, r2)
	}
	_, m1 := t1.(*types.Map)
	_, m2 := t2.(*types.Map)
	if !m1 && !m2 {
		return p.fuseVariantsKind(t1, t2)
	}
	elem := types.Type(types.Empty)
	elem = p.absorbIntoMapElem(elem, t1)
	elem = p.absorbIntoMapElem(elem, t2)
	return types.MustMap(elem)
}

// absorbIntoMapElem folds a record-kind type's content into a map
// element type: map elements directly, record field types one by one,
// and variants component-wise (which makes the result a function of the
// underlying field-type multiset, independent of how the variants were
// merged beforehand).
func (p policy) absorbIntoMapElem(elem types.Type, t types.Type) types.Type {
	switch tt := t.(type) {
	case *types.Map:
		return p.fuse(elem, tt.Elem())
	case *types.Record:
		for _, f := range tt.Fields() {
			elem = p.fuse(elem, f.Type)
		}
		return elem
	case *types.Variants:
		for _, c := range tt.Cases() {
			elem = p.absorbIntoMapElem(elem, c.Type)
		}
		if tt.Other() != nil {
			elem = p.absorbIntoMapElem(elem, tt.Other())
		}
		return elem
	default:
		panic(fmt.Sprintf("fusion: map absorption of %T", t))
	}
}

// fuseRecords implements line 3 of Figure 6: FMatch fields fuse
// recursively keeping the minimum cardinality (? < 1, so a field is
// mandatory only when mandatory on both sides); FUnmatch fields become
// optional.
func (p policy) fuseRecords(r1, r2 *types.Record) types.Type {
	f1, f2 := r1.Fields(), r2.Fields()
	out := make([]types.Field, 0, len(f1)+len(f2))
	i, j := 0, 0
	for i < len(f1) && j < len(f2) {
		switch {
		case f1[i].Key == f2[j].Key:
			out = append(out, types.Field{
				Key:      f1[i].Key,
				Type:     p.fuse(f1[i].Type, f2[j].Type),
				Optional: f1[i].Optional || f2[j].Optional,
			})
			i++
			j++
		case f1[i].Key < f2[j].Key:
			out = append(out, types.Field{Key: f1[i].Key, Type: f1[i].Type, Optional: true})
			i++
		default:
			out = append(out, types.Field{Key: f2[j].Key, Type: f2[j].Type, Optional: true})
			j++
		}
	}
	for ; i < len(f1); i++ {
		out = append(out, types.Field{Key: f1[i].Key, Type: f1[i].Type, Optional: true})
	}
	for ; j < len(f2); j++ {
		out = append(out, types.Field{Key: f2[j].Key, Type: f2[j].Type, Optional: true})
	}
	// Keys are unique within each input, so the merge cannot collide.
	return types.MustRecord(out...)
}

// fuseArrays implements lines 4-7 of Figure 6, plus the positional
// extension: two equal-length tuples within the policy's cutoff fuse
// element-wise and stay positional; every other combination simplifies
// to a repeated type over the fused body types.
func (p policy) fuseArrays(t1, t2 types.Type) types.Type {
	a1, ok1 := t1.(*types.Tuple)
	a2, ok2 := t2.(*types.Tuple)
	if ok1 && ok2 && a1.Len() == a2.Len() && p.keepTuple(a1.Len()) {
		elems := make([]types.Type, a1.Len())
		for i := range elems {
			elems[i] = p.fuse(a1.Elems()[i], a2.Elems()[i])
		}
		return types.MustTuple(elems...)
	}
	return types.MustRepeated(p.fuse(p.body(t1), p.body(t2)))
}

// body returns the content type an array-kind type contributes to
// simplified fusion: the element type of a repeated type, or collapse of
// a tuple.
func (p policy) body(t types.Type) types.Type {
	switch tt := t.(type) {
	case *types.Repeated:
		return tt.Elem()
	case *types.Tuple:
		return p.collapse(tt)
	default:
		panic(fmt.Sprintf("fusion: array body of %T", t))
	}
}

// collapse implements lines 8-9 of Figure 6 under a policy.
func (p policy) collapse(t *types.Tuple) types.Type {
	acc := types.Type(types.Empty)
	elems := t.Elems()
	// Right fold, as in collapse(ArrT(T, AT)) = Fuse(T, collapse(AT)).
	for i := len(elems) - 1; i >= 0; i-- {
		acc = p.fuse(elems[i], acc)
	}
	return acc
}

// simplify rewrites array types into the policy's canonical form,
// routing through the memo cache when one is installed.
func (p policy) simplify(t types.Type) types.Type {
	if p.memo != nil {
		return p.memo.simplify(p, t)
	}
	return p.simplifyDirect(t)
}

// simplifyDirect implements simplify with no caching.
func (p policy) simplifyDirect(t types.Type) types.Type {
	switch tt := t.(type) {
	case types.Basic, types.EmptyType:
		return t
	case *types.Record:
		fs := tt.Fields()
		out := make([]types.Field, len(fs))
		for i, f := range fs {
			out[i] = types.Field{Key: f.Key, Type: p.simplify(f.Type), Optional: f.Optional}
		}
		return types.MustRecord(out...)
	case *types.Tuple:
		simplified := make([]types.Type, tt.Len())
		for i, e := range tt.Elems() {
			simplified[i] = p.simplify(e)
		}
		if p.keepTuple(tt.Len()) {
			return types.MustTuple(simplified...)
		}
		return types.MustRepeated(p.collapse(types.MustTuple(simplified...)))
	case *types.Map:
		return types.MustMap(p.simplify(tt.Elem()))
	case *types.Variants:
		if tt.Collapsed() {
			return types.MustCollapsedVariants(p.simplify(tt.Other()).(*types.Record))
		}
		cs := make([]types.Variant, tt.Len())
		for i, c := range tt.Cases() {
			cs[i] = types.Variant{Tag: c.Tag, Type: p.simplify(c.Type).(*types.Record)}
		}
		var other *types.Record
		if tt.Other() != nil {
			other = p.simplify(tt.Other()).(*types.Record)
		}
		return types.MustVariants(tt.Key(), tt.Wrapper(), cs, other)
	case *types.Repeated:
		return types.MustRepeated(p.simplify(tt.Elem()))
	case *types.Union:
		alts := tt.Alts()
		out := make([]types.Type, len(alts))
		for i, a := range alts {
			out[i] = p.simplify(a)
		}
		// Simplification can merge two array-kind alternatives (a tuple
		// and a repeated type) into the same kind slot; refuse through
		// fuse to restore normality.
		acc := types.Type(types.Empty)
		for _, a := range out {
			acc = p.fuse(acc, a)
		}
		return acc
	default:
		panic(fmt.Sprintf("fusion: unknown type %T", t))
	}
}
