package fusion

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/enrich/monoidtest"
	"repro/internal/infer"
	"repro/internal/types"
	"repro/internal/value"
)

var tagged = Options{Strategy: Tagged{}}

// tagPool is large enough that the default cap (16) rarely trips in the
// random suites; the cap=2 subjects below stress the collapse path on
// nearly every merge instead.
var tagPool = []string{"push", "fork", "watch", "issue", "deploy", "create", "delete", "release"}

// randomValueR mirrors randomValue over math/rand, the source the
// monoidtest harness regenerates elements from.
func randomValueR(r *rand.Rand, depth int) value.Value {
	max := 6
	if depth <= 0 {
		max = 4
	}
	switch r.Intn(max) {
	case 0:
		return value.Null{}
	case 1:
		return value.Bool(r.Intn(2) == 0)
	case 2:
		return value.Num(float64(r.Intn(50)))
	case 3:
		return value.Str(strings.Repeat("s", r.Intn(3)))
	case 4:
		return randomRecordValueR(r, depth)
	default:
		var a value.Array
		for i := 0; i < r.Intn(4); i++ {
			a = append(a, randomValueR(r, depth-1))
		}
		return a
	}
}

// randomRecordValueR builds a record value over keys a..e.
func randomRecordValueR(r *rand.Rand, depth int) *value.Record {
	var fs []value.Field
	seen := map[string]bool{}
	for i := 0; i < r.Intn(4); i++ {
		k := string(rune('a' + r.Intn(5)))
		if seen[k] {
			continue
		}
		seen[k] = true
		fs = append(fs, value.Field{Key: k, Value: randomValueR(r, depth-1)})
	}
	return value.MustRecord(fs...)
}

// randomPromoted produces the types phase one hands the tagged fusion:
// keyed and wrapper single-case variants around inferred records, plain
// records, and non-record values — the full input distribution of the
// tagged monoid.
func randomPromoted(r *rand.Rand) types.Type {
	switch r.Intn(5) {
	case 0, 1: // keyed promotion
		key := [...]string{"type", "event"}[r.Intn(2)]
		tag := tagPool[r.Intn(len(tagPool))]
		rv := randomRecordValueR(r, 2)
		fs := append([]value.Field{{Key: key, Value: value.Str(tag)}}, rv.Fields()...)
		rt := infer.Infer(value.MustRecord(fs...)).(*types.Record)
		return types.MustVariants(key, false, []types.Variant{{Tag: tag, Type: rt}}, nil)
	case 2: // wrapper promotion
		tag := tagPool[r.Intn(len(tagPool))]
		rt := infer.Infer(value.MustRecord(value.Field{Key: tag, Value: randomRecordValueR(r, 2)})).(*types.Record)
		return types.MustVariants("", true, []types.Variant{{Tag: tag, Type: rt}}, nil)
	case 3: // undiscriminated record
		return infer.Infer(randomRecordValueR(r, 2))
	default: // any value kind
		return infer.Infer(randomValueR(r, 2))
	}
}

// TestTaggedMonoidConformance runs the repository-wide commutative
// monoid harness over the tagged fusion policies: the default knobs, a
// cap of two (so the collapse-to-paper path fires on nearly every
// random merge tree), and the composition with the positional
// extension. Fingerprints are the canonical renderings, and the wire
// codec exercises the variants round-trip on every element.
func TestTaggedMonoidConformance(t *testing.T) {
	subject := func(name string, o Options) monoidtest.Subject {
		return monoidtest.Subject{
			Name:  name,
			Empty: func() any { return types.Type(types.Empty) },
			Rand: func(r *rand.Rand) any {
				acc := o.Simplify(randomPromoted(r))
				for i := 0; i < r.Intn(3); i++ {
					acc = o.Fuse(acc, o.Simplify(randomPromoted(r)))
				}
				return acc
			},
			Merge:       func(a, b any) any { return o.Fuse(a.(types.Type), b.(types.Type)) },
			Fingerprint: func(x any) string { return x.(types.Type).String() },
			Marshal:     func(x any) ([]byte, error) { return types.MarshalJSON(x.(types.Type)) },
			Unmarshal:   func(data []byte) (any, error) { return types.UnmarshalJSON(data) },
		}
	}
	monoidtest.Run(t, subject("fusion.Tagged", tagged))
	monoidtest.Run(t, subject("fusion.Tagged(cap=2)", Options{Strategy: Tagged{MaxVariants: 2}}))
	monoidtest.Run(t, subject("fusion.Tagged+Tuples", Options{Strategy: Tagged{Inner: Tuples{}}}))
}

// randomTaggedType builds elements the way the pipeline accumulators
// do: a fusion of simplified phase-one types under the tagged policy.
func randomTaggedType(r *rand.Rand) types.Type {
	acc := tagged.Simplify(randomPromoted(r))
	for i := 0; i < r.Intn(3); i++ {
		acc = tagged.Fuse(acc, tagged.Simplify(randomPromoted(r)))
	}
	return acc
}

func TestTaggedCommutativity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		t1 := randomTaggedType(r)
		t2 := randomTaggedType(r)
		return types.Equal(tagged.Fuse(t1, t2), tagged.Fuse(t2, t1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestTaggedAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		t1 := randomTaggedType(r)
		t2 := randomTaggedType(r)
		t3 := randomTaggedType(r)
		a := tagged.Fuse(tagged.Fuse(t1, t2), t3)
		b := tagged.Fuse(t1, tagged.Fuse(t2, t3))
		if !types.Equal(a, b) {
			t.Logf("T1=%s\nT2=%s\nT3=%s\nleft=%s\nright=%s", t1, t2, t3, a, b)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestTaggedCapAssociativity is the adversarial variant: with a cap of
// two the collapse fires at different points of the two association
// orders, which only converges because the collapsed state is a
// function of the constituent multiset.
func TestTaggedCapAssociativity(t *testing.T) {
	capped := Options{Strategy: Tagged{MaxVariants: 2}}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ts := make([]types.Type, 3)
		for i := range ts {
			ts[i] = capped.Simplify(randomPromoted(r))
		}
		a := capped.Fuse(capped.Fuse(ts[0], ts[1]), ts[2])
		b := capped.Fuse(ts[0], capped.Fuse(ts[1], ts[2]))
		if !types.Equal(a, b) {
			t.Logf("T1=%s\nT2=%s\nT3=%s\nleft=%s\nright=%s", ts[0], ts[1], ts[2], a, b)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600}); err != nil {
		t.Error(err)
	}
}

func TestTaggedNormalForm(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fused := tagged.Fuse(randomTaggedType(r), randomTaggedType(r))
		return types.IsNormal(fused) && types.IsNormal(tagged.Finalize(fused))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestTaggedCorrectness is Theorem 5.2 for the tagged strategy: source
// values stay members of the fused type, before and after finalize.
func TestTaggedCorrectness(t *testing.T) {
	pr := tagged.Promoter()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vs := make([]value.Value, 2+r.Intn(3))
		ts := make([]types.Type, len(vs))
		for i := range vs {
			rv := randomRecordValueR(r, 2)
			if r.Intn(2) == 0 {
				tag := tagPool[r.Intn(len(tagPool))]
				fs := append([]value.Field{{Key: "type", Value: value.Str(tag)}}, rv.Fields()...)
				rv = value.MustRecord(fs...)
				vs[i] = rv
				ts[i] = pr.Promote(infer.Infer(rv).(*types.Record), "type", tag)
			} else {
				vs[i] = rv
				ts[i] = infer.Infer(rv)
			}
		}
		fused := types.Type(types.Empty)
		for _, tt := range ts {
			fused = tagged.Fuse(fused, tagged.Simplify(tt))
		}
		final := tagged.Finalize(fused)
		for _, v := range vs {
			if !types.Member(v, fused) || !types.Member(v, final) {
				t.Logf("v=%s\nfused=%s\nfinal=%s", value.JSON(v), fused, final)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestTaggedSubsumedByPaper: the finalized tagged schema refines the
// paper schema for the same inputs — it admits only values the plain
// record fusion admits.
func TestTaggedSubsumedByPaper(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		taggedAcc := types.Type(types.Empty)
		paperAcc := types.Type(types.Empty)
		for i := 0; i < n; i++ {
			pt := randomPromoted(r)
			taggedAcc = tagged.Fuse(taggedAcc, tagged.Simplify(pt))
			var o Options
			paperAcc = o.Fuse(paperAcc, o.Simplify(flattenPromoted(pt)))
		}
		final := tagged.Finalize(taggedAcc)
		if !types.Subtype(final, paperAcc) {
			t.Logf("tagged=%s\npaper=%s", final, paperAcc)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// flattenPromoted strips the phase-one promotion, recovering the plain
// record the default decoder would have inferred.
func flattenPromoted(t types.Type) types.Type {
	if v, ok := t.(*types.Variants); ok {
		return policy{}.flattenVariants(v)
	}
	return t
}

// TestTaggedCollapseMatchesPaper pins the failure semantics: a mode or
// key mismatch collapses to exactly the record the paper strategy
// infers for the same constituents.
func TestTaggedCollapseMatchesPaper(t *testing.T) {
	a := types.MustParse(`{type: Str, ref: Str}`).(*types.Record)
	b := types.MustParse(`{event: Str, repo: Str}`).(*types.Record)
	va := types.MustVariants("type", false, []types.Variant{{Tag: "push", Type: a}}, nil)
	vb := types.MustVariants("event", false, []types.Variant{{Tag: "fork", Type: b}}, nil)
	got := tagged.Fuse(va, vb)
	gv, ok := got.(*types.Variants)
	if !ok || !gv.Collapsed() {
		t.Fatalf("mismatched keys should collapse, got %s", got)
	}
	var o Options
	want := o.Fuse(a, b)
	if !types.Equal(gv.Other(), want) {
		t.Fatalf("collapsed content = %s, want the paper fusion %s", gv.Other(), want)
	}
	if !types.Equal(tagged.Finalize(got), want) {
		t.Fatalf("finalized collapse = %s, want %s", tagged.Finalize(got), want)
	}
}

// TestTaggedFinalizeWrapperThreshold pins the wrapper lowering rule: a
// single observed wrapper tag flattens away (a one-field record is
// overwhelmingly a nested object), two or more survive.
func TestTaggedFinalizeWrapperThreshold(t *testing.T) {
	one := types.MustParse(`wrapper{delete: {delete: {id: Num}}}`)
	if got := tagged.Finalize(one); !types.Equal(got, types.MustParse(`{delete: {id: Num}}`)) {
		t.Errorf("single-tag wrapper should flatten, got %s", got)
	}
	two := tagged.Fuse(one, types.MustParse(`wrapper{limit: {limit: {track: Num}}}`))
	if got, ok := tagged.Finalize(two).(*types.Variants); !ok || got.Len() != 2 {
		t.Errorf("two-tag wrapper should survive finalize, got %s", tagged.Finalize(two))
	}
}

// TestTaggedIdempotent: fusing a tagged schema with itself changes
// nothing — the absorption law the dedup accumulator relies on.
func TestTaggedIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randomTaggedType(r)
		return types.Equal(tagged.Fuse(x, x), x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
