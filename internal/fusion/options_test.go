package fusion

import (
	"testing"
	"testing/quick"

	"repro/internal/infer"
	"repro/internal/types"
	"repro/internal/value"
)

var positional = Options{PreserveTuples: true}

func TestZeroOptionsMatchPaperFuse(t *testing.T) {
	var o Options
	r := &rng{s: 99}
	for i := 0; i < 100; i++ {
		t1 := randomNormalType(r)
		t2 := randomNormalType(r)
		if !types.Equal(o.Fuse(t1, t2), Fuse(t1, t2)) {
			t.Fatalf("zero Options diverges from Fuse on %s / %s", t1, t2)
		}
	}
}

func TestPositionalKeepsEqualLengthTuples(t *testing.T) {
	cases := []struct {
		t1, t2, want string
	}{
		// Coordinate pairs stay positional.
		{"[Num, Num]", "[Num, Num]", "[Num, Num]"},
		{"[Num, Str]", "[Num, Num]", "[Num, Num + Str]"},
		{"[Num, {a: Num}]", "[Str, {b: Str}]", "[Num + Str, {a: Num?, b: Str?}]"},
		// Length mismatch falls back to the paper's simplification.
		{"[Num, Num]", "[Num]", "[Num*]"},
		{"[Num, Num]", "[Str, Str, Str]", "[(Num + Str)*]"},
		// Repeated types force simplification too.
		{"[Num, Num]", "[Num*]", "[Num*]"},
		{"[Num*]", "[Num, Str]", "[(Num + Str)*]"},
		// The empty tuple is preserved only against itself (length 0 is
		// below the cutoff, so it simplifies).
		{"[]", "[]", "[ε*]"},
	}
	for _, c := range cases {
		got := positional.Fuse(types.MustParse(c.t1), types.MustParse(c.t2))
		if !types.Equal(got, types.MustParse(c.want)) {
			t.Errorf("Fuse(%s, %s) = %s, want %s", c.t1, c.t2, got, c.want)
		}
	}
}

func TestMaxTupleLenCutoff(t *testing.T) {
	long := "[Num, Num, Num, Num, Num]" // length 5 > default cutoff 4
	got := positional.Fuse(types.MustParse(long), types.MustParse(long))
	if !types.Equal(got, types.MustParse("[Num*]")) {
		t.Errorf("5-tuple should simplify under the default cutoff, got %s", got)
	}
	wide := Options{PreserveTuples: true, MaxTupleLen: 8}
	got = wide.Fuse(types.MustParse(long), types.MustParse(long))
	if !types.Equal(got, types.MustParse(long)) {
		t.Errorf("5-tuple should survive cutoff 8, got %s", got)
	}
}

func TestPositionalSimplify(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"[Num, Str]", "[Num, Str]"},            // kept
		{"[Num, Num, Num, Num, Num]", "[Num*]"}, // beyond cutoff
		{"{a: [[Num, Num], [Num, Num]]}", "{a: [[Num, Num], [Num, Num]]}"},
		{"[]", "[ε*]"},
		{"[[Num, Num, Num, Num, Num]]", "[[Num*]]"}, // outer kept, inner simplified
	}
	for _, c := range cases {
		got := positional.Simplify(types.MustParse(c.in))
		if !types.Equal(got, types.MustParse(c.want)) {
			t.Errorf("Simplify(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestPositionalPrecisionExample(t *testing.T) {
	// GeoJSON-style coordinates: the paper's algorithm gives [Num*],
	// losing arity; the positional policy keeps the pair.
	vs := []value.Value{
		value.Obj("coordinates", value.Arr(value.Num(2.35), value.Num(48.85))),
		value.Obj("coordinates", value.Arr(value.Num(-74.0), value.Num(40.7))),
	}
	ts := make([]types.Type, len(vs))
	for i, v := range vs {
		ts[i] = infer.Infer(v)
	}
	paper := FuseAll(ts)
	pos := positional.FuseAll(ts)
	if !types.Equal(paper, types.MustParse("{coordinates: [Num*]}")) {
		t.Errorf("paper fusion = %s", paper)
	}
	if !types.Equal(pos, types.MustParse("{coordinates: [Num, Num]}")) {
		t.Errorf("positional fusion = %s", pos)
	}
	// Precision: the positional type rejects a 3-element array that the
	// simplified one (soundly but imprecisely) accepts.
	triple := value.Obj("coordinates", value.Arr(value.Num(1), value.Num(2), value.Num(3)))
	if !types.Member(triple, paper) {
		t.Error("paper type should accept the triple (over-approximation)")
	}
	if types.Member(triple, pos) {
		t.Error("positional type should reject the triple")
	}
}

func TestPositionalCorrectness(t *testing.T) {
	// Theorem 5.2 must survive the extension: inputs remain subtypes of
	// the fusion, and source values remain members.
	f := func(seed uint64) bool {
		r := &rng{s: seed | 1}
		v1 := randomValue(r, 3)
		v2 := randomValue(r, 3)
		t1 := infer.Infer(v1)
		t2 := infer.Infer(v2)
		fused := positional.Fuse(t1, t2)
		if !types.Member(v1, fused) || !types.Member(v2, fused) {
			t.Logf("v1=%s v2=%s fused=%s", value.JSON(v1), value.JSON(v2), fused)
			return false
		}
		return types.Subtype(t1, fused) && types.Subtype(t2, fused)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPositionalCommutativity(t *testing.T) {
	f := func(seed uint64) bool {
		r := &rng{s: seed | 1}
		t1 := randomPositionalType(r)
		t2 := randomPositionalType(r)
		return types.Equal(positional.Fuse(t1, t2), positional.Fuse(t2, t1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPositionalAssociativity(t *testing.T) {
	f := func(seed uint64) bool {
		r := &rng{s: seed | 1}
		t1 := randomPositionalType(r)
		t2 := randomPositionalType(r)
		t3 := randomPositionalType(r)
		a := positional.Fuse(positional.Fuse(t1, t2), t3)
		b := positional.Fuse(t1, positional.Fuse(t2, t3))
		if !types.Equal(a, b) {
			t.Logf("T1=%s\nT2=%s\nT3=%s\nleft=%s\nright=%s", t1, t2, t3, a, b)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPositionalNormalForm(t *testing.T) {
	f := func(seed uint64) bool {
		r := &rng{s: seed | 1}
		fused := positional.Fuse(randomPositionalType(r), randomPositionalType(r))
		return types.IsNormal(fused)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPositionalSubsumedBySimplified(t *testing.T) {
	// The positional schema is at least as precise: it is always a
	// subtype of the paper's simplified schema for the same data.
	f := func(seed uint64) bool {
		r := &rng{s: seed | 1}
		ts := make([]types.Type, 1+r.intn(4))
		for i := range ts {
			ts[i] = infer.Infer(randomValue(r, 3))
		}
		pos := positional.FuseAll(ts)
		paper := FuseAll(ts)
		if !types.Subtype(pos, paper) {
			t.Logf("pos=%s\npaper=%s", pos, paper)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// randomPositionalType builds normal types the positional pipeline would
// see: fusions of inferred types under the positional policy.
func randomPositionalType(r *rng) types.Type {
	acc := infer.Infer(randomValue(r, 3))
	for i := 0; i < r.intn(3); i++ {
		acc = positional.Fuse(acc, infer.Infer(randomValue(r, 3)))
	}
	return acc
}
