package fusion

import (
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestFuseMapWithMap(t *testing.T) {
	got := Fuse(tp(t, "{*: Num}"), tp(t, "{*: Str}"))
	if !types.Equal(got, tp(t, "{*: Num + Str}")) {
		t.Errorf("got %s", got)
	}
}

func TestFuseMapAbsorbsRecord(t *testing.T) {
	cases := []struct {
		t1, t2, want string
	}{
		{"{*: Num}", "{P1: Num, P2: Num}", "{*: Num}"},
		{"{*: Num}", "{P1: Str}", "{*: Num + Str}"},
		{"{P9: Bool}", "{*: Num}", "{*: Bool + Num}"},
		{"{*: Num}", "{}", "{*: Num}"},
		{"{*: {a: Num}}", "{k: {a: Str, b: Bool}}", "{*: {a: Num + Str, b: Bool?}}"},
		// Maps inside unions fuse kind-wise like records do.
		{"Str + {*: Num}", "{k: Bool} + Null", "Null + Str + {*: Bool + Num}"},
	}
	for _, c := range cases {
		got := Fuse(tp(t, c.t1), tp(t, c.t2))
		if !types.Equal(got, tp(t, c.want)) {
			t.Errorf("Fuse(%s, %s) = %s, want %s", c.t1, c.t2, got, c.want)
		}
	}
}

func TestFuseMapCommutativeAssociative(t *testing.T) {
	// Mix maps, records and scalars; the monoid laws must survive the
	// extension.
	pool := []types.Type{
		tp(t, "{*: Num}"),
		tp(t, "{*: {language: Str}}"),
		tp(t, "{P1: Num, P2: Str}"),
		tp(t, "{a: Bool}"),
		tp(t, "Str"),
		tp(t, "[{*: Num}*]"),
		tp(t, "{x: {*: Str}}"),
		tp(t, "ε"),
	}
	f := func(i, j, k uint8) bool {
		t1 := pool[int(i)%len(pool)]
		t2 := pool[int(j)%len(pool)]
		t3 := pool[int(k)%len(pool)]
		if !types.Equal(Fuse(t1, t2), Fuse(t2, t1)) {
			return false
		}
		return types.Equal(Fuse(Fuse(t1, t2), t3), Fuse(t1, Fuse(t2, t3)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFuseMapCorrectness(t *testing.T) {
	// Theorem 5.2 extends: both inputs are subtypes of the fusion.
	pairs := [][2]string{
		{"{*: Num}", "{P1: Str, P2: Bool}"},
		{"{*: {a: Num}}", "{*: {b: Str}}"},
		{"{k: Num} + Str", "{*: Bool}"},
	}
	for _, p := range pairs {
		t1, t2 := tp(t, p[0]), tp(t, p[1])
		fused := Fuse(t1, t2)
		if !types.Subtype(t1, fused) || !types.Subtype(t2, fused) {
			t.Errorf("Fuse(%s, %s) = %s is not a supertype of both", t1, t2, fused)
		}
		if !types.IsNormal(fused) {
			t.Errorf("fused type not normal: %s", fused)
		}
	}
}

func TestSimplifyRecursesIntoMaps(t *testing.T) {
	got := Simplify(tp(t, "{*: [Num, Str]}"))
	if !types.Equal(got, tp(t, "{*: [(Num + Str)*]}")) {
		t.Errorf("Simplify = %s", got)
	}
}

func TestFuseMapIdempotent(t *testing.T) {
	m := tp(t, "{*: Num + {language: Str}}")
	if got := Fuse(m, m); !types.Equal(got, m) {
		t.Errorf("Fuse(m, m) = %s", got)
	}
}
