package fusion

import (
	"fmt"

	"repro/internal/types"
)

// This file holds the record-kind half of the Tagged strategy: the
// variants merge rules, the collapse-to-paper flattening, the
// finalization pass that lowers intermediate states, and the Promoter
// that phase one uses to wrap discriminated records. The algebra is
// documented in docs/UNIONS.md; the short version is that every rule
// computes a function of the multiset of fused constituents, which is
// what makes the operator commutative and associative regardless of
// the reduce tree's shape.

// variantsCap returns the effective tag cap: the policy's knob, or the
// default when a variants type is fused under a policy that never
// produces one (parsed or persisted types fed back through Fuse).
func (p policy) variantsCap() int {
	if p.par.maxVariants > 0 {
		return p.par.maxVariants
	}
	return DefaultMaxVariants
}

// fuseRecordsR is fuseRecords with the result typed as the record it
// always is.
func (p policy) fuseRecordsR(r1, r2 *types.Record) *types.Record {
	return p.fuseRecords(r1, r2).(*types.Record)
}

// fuseVariantsKind fuses two record-kind types of which at least one is
// a variants type and neither is a map (maps absorb the whole kind in
// fuseRecordKind).
func (p policy) fuseVariantsKind(t1, t2 types.Type) types.Type {
	v1, ok1 := t1.(*types.Variants)
	v2, ok2 := t2.(*types.Variants)
	switch {
	case ok1 && ok2:
		return p.fuseVariants(v1, v2)
	case ok1:
		return p.fuseVariantsRecord(v1, t2.(*types.Record))
	case ok2:
		return p.fuseVariantsRecord(v2, t1.(*types.Record))
	default:
		panic(fmt.Sprintf("fusion: fuseVariantsKind on %T and %T", t1, t2))
	}
}

// fuseVariantsRecord absorbs a plain record into the union's Other
// branch. Other's catch-all membership semantics makes this sound
// unconditionally, which keeps the rule order-independent: Other is
// always the plain record fusion of every undiscriminated constituent.
func (p policy) fuseVariantsRecord(v *types.Variants, r *types.Record) types.Type {
	other := r
	if v.Other() != nil {
		other = p.fuseRecordsR(v.Other(), r)
	}
	if v.Collapsed() {
		return types.MustCollapsedVariants(other)
	}
	return types.MustVariants(v.Key(), v.Wrapper(), v.Cases(), other)
}

// fuseVariants merges two tagged unions. Matching modes and keys merge
// case-wise by tag; a failed hypothesis — mismatched modes, more tags
// than the cap, or either side already collapsed — yields the absorbing
// collapsed state around the plain record fusion of everything, which
// is exactly what the Paper strategy would have produced for the same
// multiset of records.
func (p policy) fuseVariants(a, b *types.Variants) types.Type {
	collapse := func() types.Type {
		return types.MustCollapsedVariants(p.fuseRecordsR(p.flattenVariants(a), p.flattenVariants(b)))
	}
	if a.Collapsed() || b.Collapsed() {
		return collapse()
	}
	if a.Wrapper() != b.Wrapper() || a.Key() != b.Key() {
		return collapse()
	}
	ca, cb := a.Cases(), b.Cases()
	out := make([]types.Variant, 0, len(ca)+len(cb))
	i, j := 0, 0
	for i < len(ca) && j < len(cb) {
		switch {
		case ca[i].Tag == cb[j].Tag:
			out = append(out, types.Variant{Tag: ca[i].Tag, Type: p.fuseRecordsR(ca[i].Type, cb[j].Type)})
			i++
			j++
		case ca[i].Tag < cb[j].Tag:
			out = append(out, ca[i])
			i++
		default:
			out = append(out, cb[j])
			j++
		}
	}
	out = append(out, ca[i:]...)
	out = append(out, cb[j:]...)
	if len(out) > p.variantsCap() {
		return collapse()
	}
	other := a.Other()
	switch {
	case other == nil:
		other = b.Other()
	case b.Other() != nil:
		other = p.fuseRecordsR(other, b.Other())
	}
	return types.MustVariants(a.Key(), a.Wrapper(), out, other)
}

// flattenVariants computes the plain record the Paper strategy would
// have inferred for the union's constituents: the record fusion of
// every case type and Other. fuseRecords is commutative and
// associative, so the result is a function of the constituent multiset
// and collapsing at different points of a reduce tree converges.
func (p policy) flattenVariants(v *types.Variants) *types.Record {
	var acc *types.Record
	add := func(r *types.Record) {
		if acc == nil {
			acc = r
		} else {
			acc = p.fuseRecordsR(acc, r)
		}
	}
	for _, c := range v.Cases() {
		add(c.Type)
	}
	if v.Other() != nil {
		add(v.Other())
	}
	return acc
}

// hasVariants reports whether any node of t is a variants type — the
// Finalize fast path: types never touched by tagged inference are
// returned as-is, node identity included, so the default strategies'
// folds stay byte- and pointer-identical to their pre-variants output.
func hasVariants(t types.Type) bool {
	found := false
	types.Walk(t, func(n types.Type) bool {
		if _, ok := n.(*types.Variants); ok {
			found = true
		}
		return !found
	})
	return found
}

// finalize lowers the intermediate variants states after the final
// reduce: collapsed unions become their plain record, wrapper unions
// with fewer than two observed tags fold back into the record fusion
// of their components (a single one-field record is overwhelmingly a
// nested object, not a discriminated stream — Twitter-style wrappers
// prove themselves by exhibiting several tags), and keyed unions keep
// even a single case (the constant discriminator is informative). The
// pass recurses structurally, so nested unions lower too.
func (p policy) finalize(t types.Type) types.Type {
	switch tt := t.(type) {
	case types.Basic, types.EmptyType:
		return t
	case *types.Record:
		fs := tt.Fields()
		out := make([]types.Field, len(fs))
		for i, f := range fs {
			out[i] = types.Field{Key: f.Key, Type: p.finalize(f.Type), Optional: f.Optional}
		}
		return types.MustRecord(out...)
	case *types.Variants:
		if tt.Collapsed() {
			return p.finalize(tt.Other())
		}
		if tt.Wrapper() && tt.Len() < 2 {
			return p.finalize(p.flattenVariants(tt))
		}
		cs := make([]types.Variant, tt.Len())
		for i, c := range tt.Cases() {
			cs[i] = types.Variant{Tag: c.Tag, Type: p.finalize(c.Type).(*types.Record)}
		}
		var other *types.Record
		if tt.Other() != nil {
			other = p.finalize(tt.Other()).(*types.Record)
		}
		return types.MustVariants(tt.Key(), tt.Wrapper(), cs, other)
	case *types.Map:
		return types.MustMap(p.finalize(tt.Elem()))
	case *types.Tuple:
		elems := make([]types.Type, tt.Len())
		for i, e := range tt.Elems() {
			elems[i] = p.finalize(e)
		}
		return types.MustTuple(elems...)
	case *types.Repeated:
		return types.MustRepeated(p.finalize(tt.Elem()))
	case *types.Union:
		alts := tt.Alts()
		out := make([]types.Type, len(alts))
		for i, a := range alts {
			out[i] = p.finalize(a)
		}
		// Lowering keeps every alternative in its kind (variants lower
		// to records, both record-kind), so normality is preserved.
		return types.MustUnion(out...)
	default:
		panic(fmt.Sprintf("fusion: unknown type %T", t))
	}
}

// A Promoter is the phase-one half of the Tagged strategy: the decoder
// consults it while inferring each JSON object and wraps records that
// carry a discriminator into single-case variants types, which the
// fusion rules above then merge tag-wise. Options.Promoter returns nil
// for strategies without tagged-union inference, so the decoder's fast
// path is untouched by default.
type Promoter struct {
	keys      []string
	maxTagLen int
}

// Promoter returns the phase-one promoter for the options' strategy,
// or nil when the strategy does not infer tagged unions.
func (o Options) Promoter() *Promoter {
	par := o.params()
	if !par.tagged {
		return nil
	}
	return &Promoter{keys: par.tagKeys, maxTagLen: par.maxTagLen}
}

// CandidateKeys lists the discriminator field names in priority order.
func (pr *Promoter) CandidateKeys() []string { return pr.keys }

// MaxTagLen is the longest string value considered a tag.
func (pr *Promoter) MaxTagLen() int { return pr.maxTagLen }

// Promote wraps a record whose field key carried the string value tag
// into a single-case keyed variants type.
func (pr *Promoter) Promote(r *types.Record, key, tag string) types.Type {
	return types.MustVariants(key, false, []types.Variant{{Tag: tag, Type: r}}, nil)
}

// PromoteWrapper wraps a single-field record whose field value is an
// object into a single-case wrapper variants type; tag is that field's
// key.
func (pr *Promoter) PromoteWrapper(r *types.Record, tag string) types.Type {
	return types.MustVariants("", true, []types.Variant{{Tag: tag, Type: r}}, nil)
}
