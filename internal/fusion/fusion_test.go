package fusion

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/infer"
	"repro/internal/types"
	"repro/internal/value"
)

func tp(t *testing.T, src string) types.Type {
	t.Helper()
	tt, err := types.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return tt
}

func TestFuseBasic(t *testing.T) {
	cases := []struct {
		t1, t2, want string
	}{
		{"Num", "Num", "Num"},
		{"Num", "Str", "Num + Str"},
		{"Str", "Num", "Num + Str"},
		{"Null", "Bool", "Null + Bool"},
		{"Num", "ε", "Num"},
		{"ε", "Num", "Num"},
		{"ε", "ε", "ε"},
		{"Num + Str", "Bool", "Bool + Num + Str"},
		{"Num + Str", "Str + Null", "Null + Num + Str"},
	}
	for _, c := range cases {
		got := Fuse(tp(t, c.t1), tp(t, c.t2))
		if got.String() != tp(t, c.want).String() {
			t.Errorf("Fuse(%s, %s) = %s, want %s", c.t1, c.t2, got, c.want)
		}
	}
}

func TestFuseSection2RecordExample(t *testing.T) {
	// T1 = {A: Str, B: Num}, T2 = {B: Bool, C: Str}
	// T12 = {A: Str?, B: Num + Bool, C: Str?}
	t1 := tp(t, "{A: Str, B: Num}")
	t2 := tp(t, "{B: Bool, C: Str}")
	t12 := Fuse(t1, t2)
	want := tp(t, "{A: Str?, B: Bool + Num, C: Str?}")
	if !types.Equal(t12, want) {
		t.Fatalf("T12 = %s, want %s", t12, want)
	}
	// Fusing T12 with T3 = {A: Null, B: Num}: optionality prevails over
	// the implicit total cardinality, so A stays optional.
	t3 := tp(t, "{A: Null, B: Num}")
	t123 := Fuse(t12, t3)
	want123 := tp(t, "{A: (Null + Str)?, B: Bool + Num, C: Str?}")
	if !types.Equal(t123, want123) {
		t.Fatalf("T123 = %s, want %s", t123, want123)
	}
}

func TestFuseSection2NestedUnionExample(t *testing.T) {
	// Fusing {l: Bool + Str + {A: Num}} with {l: {A: Str}, B: Num}
	// yields {l: Bool + Str + {A: Num + Str}, B: Num?}.
	t1 := tp(t, "{l: Bool + Str + {A: Num}}")
	t2 := tp(t, "{l: {A: Str}, B: Num}")
	got := Fuse(t1, t2)
	want := tp(t, "{l: Bool + Str + {A: Num + Str}, B: Num?}")
	if !types.Equal(got, want) {
		t.Fatalf("got %s, want %s", got, want)
	}
}

func TestCollapseSection5Example(t *testing.T) {
	// T = [Num, Bool, Num, {l1: Num, l2: Str}, {l1: Num, l2: Bool, l3: Str}]
	// collapse(T) = Num + Bool + {l1: Num, l2: Str + Bool, l3: Str?}
	tt := tp(t, "[Num, Bool, Num, {l1: Num, l2: Str}, {l1: Num, l2: Bool, l3: Str}]").(*types.Tuple)
	got := Collapse(tt)
	want := tp(t, "Bool + Num + {l1: Num, l2: Bool + Str, l3: Str?}")
	if !types.Equal(got, want) {
		t.Fatalf("collapse = %s, want %s", got, want)
	}
}

func TestCollapseEmptyTuple(t *testing.T) {
	if got := Collapse(types.EmptyTuple); !types.Equal(got, types.Empty) {
		t.Errorf("collapse([]) = %s, want ε", got)
	}
}

func TestFuseMixedContentArraysPositionInsensitive(t *testing.T) {
	// Section 2: [Str, Str, {E: Str, F: Num}] and the swapped
	// [{E: Str, F: Num}, Str, Str] must fuse to the same simplified type
	// [(Str + {E: Str, F: Num})*].
	a := tp(t, `[Str, Str, {E: Str, F: Num}]`)
	b := tp(t, `[{E: Str, F: Num}, Str, Str]`)
	want := tp(t, "[(Str + {E: Str, F: Num})*]")
	if got := Fuse(a, b); !types.Equal(got, want) {
		t.Errorf("Fuse = %s, want %s", got, want)
	}
	// And each with itself.
	if got := Fuse(a, a); !types.Equal(got, want) {
		t.Errorf("Fuse(a, a) = %s, want %s", got, want)
	}
}

func TestFuseArrayCombinations(t *testing.T) {
	cases := []struct {
		t1, t2, want string
	}{
		// AT + AT (line 4).
		{"[Num, Num]", "[Str]", "[(Num + Str)*]"},
		// SAT + AT and AT + SAT (lines 5, 6).
		{"[Num*]", "[Str]", "[(Num + Str)*]"},
		{"[Str]", "[Num*]", "[(Num + Str)*]"},
		// SAT + SAT (line 7).
		{"[Num*]", "[Str*]", "[(Num + Str)*]"},
		{"[Num*]", "[Num*]", "[Num*]"},
		// Empty arrays: [] simplifies to [ε*].
		{"[]", "[]", "[ε*]"},
		{"[]", "[Num]", "[Num*]"},
		{"[Num]", "[]", "[Num*]"},
		{"[ε*]", "[]", "[ε*]"},
		{"[ε*]", "[Num*]", "[Num*]"},
		// Nested arrays fuse their bodies recursively.
		{"[[Num]]", "[[Str]]", "[[(Num + Str)*]*]"},
		{"[[Num], [Str]]", "[]", "[[(Num + Str)*]*]"},
	}
	for _, c := range cases {
		got := Fuse(tp(t, c.t1), tp(t, c.t2))
		if !types.Equal(got, tp(t, c.want)) {
			t.Errorf("Fuse(%s, %s) = %s, want %s", c.t1, c.t2, got, c.want)
		}
	}
}

func TestFuseRecordWithArrayKinds(t *testing.T) {
	// Different kinds meet in a union. Per Figure 6 line 1, unmatched
	// (KUnmatch) addends pass through unchanged, so the tuple [Num] is
	// NOT simplified here: simplification happens only when two array
	// kinds actually meet in LFuse.
	got := Fuse(tp(t, "{a: Num}"), tp(t, "[Num]"))
	want := tp(t, "{a: Num} + [Num]")
	if !types.Equal(got, want) {
		t.Errorf("got %s, want %s", got, want)
	}
	// A union with both kinds fused member-wise.
	got2 := Fuse(got, tp(t, "{b: Str} + [Str]"))
	want2 := tp(t, "{a: Num?, b: Str?} + [(Num + Str)*]")
	if !types.Equal(got2, want2) {
		t.Errorf("got %s, want %s", got2, want2)
	}
}

func TestFuseOptionalityPropagation(t *testing.T) {
	cases := []struct {
		t1, t2, want string
	}{
		// min(1,1)=1, min(1,?)=?, min(?,?)=?.
		{"{a: Num}", "{a: Num}", "{a: Num}"},
		{"{a: Num}", "{a: Num?}", "{a: Num?}"},
		{"{a: Num?}", "{a: Num?}", "{a: Num?}"},
		{"{a: Num?}", "{b: Str}", "{a: Num?, b: Str?}"},
	}
	for _, c := range cases {
		got := Fuse(tp(t, c.t1), tp(t, c.t2))
		if !types.Equal(got, tp(t, c.want)) {
			t.Errorf("Fuse(%s, %s) = %s, want %s", c.t1, c.t2, got, c.want)
		}
	}
}

func TestLFusePanicsOnKindMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LFuse(Num, Str) did not panic")
		}
	}()
	LFuse(types.Num, types.Str)
}

func TestLFusePanicsOnUnion(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LFuse on a union did not panic")
		}
	}()
	LFuse(types.MustUnion(types.Num, types.Str), types.Num)
}

func TestSimplify(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"Num", "Num"},
		{"[]", "[ε*]"},
		{"[Num, Str]", "[(Num + Str)*]"},
		{"{a: [Num, Num]}", "{a: [Num*]}"},
		{"[[Num], [Str]]", "[[(Num + Str)*]*]"},
		{"{a: [Bool, {x: Num}, {y: Str}]}", "{a: [(Bool + {x: Num?, y: Str?})*]}"},
		{"[Num*]", "[Num*]"},
		{"Num + [Str, Str]", "Num + [Str*]"},
	}
	for _, c := range cases {
		got := Simplify(tp(t, c.in))
		if !types.Equal(got, tp(t, c.want)) {
			t.Errorf("Simplify(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestFuseAllFoldAndTreeAgree(t *testing.T) {
	ts := []types.Type{
		tp(t, "{a: Num}"),
		tp(t, "{a: Str, b: Bool}"),
		tp(t, "{b: Bool, c: [Num]}"),
		tp(t, "{c: [Str, Str]}"),
		tp(t, "Num"),
	}
	seq := FuseAll(ts)
	tree := FuseAllTree(ts)
	if !types.Equal(seq, tree) {
		t.Errorf("sequential %s != tree %s", seq, tree)
	}
	if !types.Equal(FuseAll(nil), types.Empty) {
		t.Error("FuseAll(nil) should be ε")
	}
	if !types.Equal(FuseAllTree(nil), types.Empty) {
		t.Error("FuseAllTree(nil) should be ε")
	}
	one := []types.Type{tp(t, "{x: Num}")}
	if !types.Equal(FuseAllTree(one), one[0]) {
		t.Error("FuseAllTree of singleton should be the element")
	}
}

// --- random generators for the theorem property tests ---

type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// randomValue mirrors the generator used in the infer tests; fusing
// inferred types of random values exercises fusion over realistic
// (normal) types, including every array/record nesting pattern.
func randomValue(r *rng, depth int) value.Value {
	max := 6
	if depth <= 0 {
		max = 4
	}
	switch r.intn(max) {
	case 0:
		return value.Null{}
	case 1:
		return value.Bool(r.intn(2) == 0)
	case 2:
		return value.Num(float64(r.intn(50)))
	case 3:
		return value.Str(strings.Repeat("s", r.intn(3)))
	case 4:
		var fs []value.Field
		seen := map[string]bool{}
		for i := 0; i < r.intn(4); i++ {
			k := string(rune('a' + r.intn(5)))
			if seen[k] {
				continue
			}
			seen[k] = true
			fs = append(fs, value.Field{Key: k, Value: randomValue(r, depth-1)})
		}
		return value.MustRecord(fs...)
	default:
		var elems value.Array
		for i := 0; i < r.intn(4); i++ {
			elems = append(elems, randomValue(r, depth-1))
		}
		if elems == nil {
			elems = value.Array{}
		}
		return elems
	}
}

// randomNormalType produces a normal type the way the pipeline does: by
// inferring types for a few random values and fusing a random subset.
func randomNormalType(r *rng) types.Type {
	n := 1 + r.intn(3)
	acc := infer.Infer(randomValue(r, 3))
	for i := 1; i < n; i++ {
		acc = Fuse(acc, infer.Infer(randomValue(r, 3)))
	}
	return acc
}

func TestTheorem52Correctness(t *testing.T) {
	// Fuse(T1, T2) is a supertype of both inputs, checked with the sound
	// syntactic subtype relation.
	f := func(seed uint64) bool {
		r := &rng{s: seed | 1}
		t1 := randomNormalType(r)
		t2 := randomNormalType(r)
		t3 := Fuse(t1, t2)
		if !types.Subtype(t1, t3) {
			t.Logf("T1 = %s\nT3 = %s", t1, t3)
			return false
		}
		if !types.Subtype(t2, t3) {
			t.Logf("T2 = %s\nT3 = %s", t2, t3)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestTheorem52CorrectnessViaMembership(t *testing.T) {
	// The value-level corollary of Lemma 5.1 + Theorem 5.2: any value
	// whose inferred type participates in a fusion belongs to the result.
	f := func(seed uint64) bool {
		r := &rng{s: seed | 1}
		vs := make([]value.Value, 1+r.intn(5))
		ts := make([]types.Type, len(vs))
		for i := range vs {
			vs[i] = randomValue(r, 3)
			ts[i] = infer.Infer(vs[i])
		}
		fused := FuseAll(ts)
		for _, v := range vs {
			if !types.Member(v, fused) {
				t.Logf("v = %s\nfused = %s", value.JSON(v), fused)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestTheorem54Commutativity(t *testing.T) {
	f := func(seed uint64) bool {
		r := &rng{s: seed | 1}
		t1 := randomNormalType(r)
		t2 := randomNormalType(r)
		a := Fuse(t1, t2)
		b := Fuse(t2, t1)
		if !types.Equal(a, b) {
			t.Logf("T1 = %s\nT2 = %s\nT1+T2 = %s\nT2+T1 = %s", t1, t2, a, b)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestTheorem55Associativity(t *testing.T) {
	f := func(seed uint64) bool {
		r := &rng{s: seed | 1}
		t1 := randomNormalType(r)
		t2 := randomNormalType(r)
		t3 := randomNormalType(r)
		a := Fuse(Fuse(t1, t2), t3)
		b := Fuse(t1, Fuse(t2, t3))
		if !types.Equal(a, b) {
			t.Logf("T1 = %s\nT2 = %s\nT3 = %s\nleft = %s\nright = %s", t1, t2, t3, a, b)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestFusionPreservesNormalForm(t *testing.T) {
	f := func(seed uint64) bool {
		r := &rng{s: seed | 1}
		t1 := randomNormalType(r)
		t2 := randomNormalType(r)
		fused := Fuse(t1, t2)
		if !types.IsNormal(fused) {
			t.Logf("T1 = %s\nT2 = %s\nfused = %s", t1, t2, fused)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestFuseReductionOrderIrrelevant(t *testing.T) {
	// Any reduction order — sequential, tree, random splits — yields the
	// same type. This is exactly the property Spark's reduce relies on.
	f := func(seed uint64) bool {
		r := &rng{s: seed | 1}
		n := 2 + r.intn(8)
		ts := make([]types.Type, n)
		for i := range ts {
			ts[i] = infer.Infer(randomValue(r, 3))
		}
		want := FuseAll(ts)
		if !types.Equal(want, FuseAllTree(ts)) {
			return false
		}
		// Random binary reduction: repeatedly fuse two random elements.
		work := append([]types.Type(nil), ts...)
		for len(work) > 1 {
			i := r.intn(len(work))
			j := r.intn(len(work))
			if i == j {
				continue
			}
			if i > j {
				i, j = j, i
			}
			merged := Fuse(work[i], work[j])
			work[i] = merged
			work = append(work[:j], work[j+1:]...)
		}
		return types.Equal(want, work[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFuseIdempotentOnSimplifiedTypes(t *testing.T) {
	// Once every tuple inside a type has been simplified to a repeated
	// type, fusing the type with itself is the identity. (A fused type
	// can still contain tuples: KUnmatch addends pass through untouched,
	// so plain Fuse output is not necessarily a fixed point.)
	f := func(seed uint64) bool {
		r := &rng{s: seed | 1}
		tt := Simplify(Fuse(randomNormalType(r), randomNormalType(r)))
		return types.Equal(Fuse(tt, tt), tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFuseSuccinctness(t *testing.T) {
	// Fusing n structurally similar records stays near the size of a
	// single record instead of growing linearly.
	var ts []types.Type
	for i := 0; i < 100; i++ {
		fields := []value.Field{
			{Key: "id", Value: value.Num(float64(i))},
			{Key: "name", Value: value.Str("n")},
		}
		if i%3 == 0 {
			fields = append(fields, value.Field{Key: "opt", Value: value.Str("x")})
		}
		ts = append(ts, infer.Infer(value.MustRecord(fields...)))
	}
	fused := FuseAll(ts)
	want := tp(t, "{id: Num, name: Str, opt: Str?}")
	if !types.Equal(fused, want) {
		t.Errorf("fused = %s, want %s", fused, want)
	}
	if fused.Size() > 8 {
		t.Errorf("fused size %d is not succinct", fused.Size())
	}
}

// sameKindPair draws two non-union normal types of the same kind, the
// domain of LFuse.
func sameKindPair(r *rng) (types.Type, types.Type) {
	for {
		t1 := randomNormalType(r)
		t2 := randomNormalType(r)
		a1 := types.Addends(t1)
		a2 := types.Addends(t2)
		if len(a1) == 0 || len(a2) == 0 {
			continue
		}
		u1 := a1[r.intn(len(a1))]
		for _, u2 := range a2 {
			k1, _ := types.KindOf(u1)
			k2, _ := types.KindOf(u2)
			if k1 == k2 {
				return u1, u2
			}
		}
	}
}

func TestLemma53LFuseCorrectness(t *testing.T) {
	// Lemma 5.3: for non-union normal types of the same kind,
	// T1 <: LFuse(T1, T2) and T2 <: LFuse(T1, T2).
	f := func(seed uint64) bool {
		r := &rng{s: seed | 1}
		t1, t2 := sameKindPair(r)
		t3 := LFuse(t1, t2)
		if !types.Subtype(t1, t3) || !types.Subtype(t2, t3) {
			t.Logf("T1=%s T2=%s LFuse=%s", t1, t2, t3)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestTheorem54LFuseCommutativity(t *testing.T) {
	// Theorem 5.4 part 2: LFuse(T, U) = LFuse(U, T).
	f := func(seed uint64) bool {
		r := &rng{s: seed | 1}
		t1, t2 := sameKindPair(r)
		return types.Equal(LFuse(t1, t2), LFuse(t2, t1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestTheorem55LFuseAssociativity(t *testing.T) {
	// Theorem 5.5 part 2: LFuse(LFuse(T, U), V) = LFuse(T, LFuse(U, V))
	// for three non-union normal types of the same kind.
	f := func(seed uint64) bool {
		r := &rng{s: seed | 1}
		t1, t2 := sameKindPair(r)
		// Find a third addend of the same kind.
		k, _ := types.KindOf(t1)
		var t3 types.Type
		for t3 == nil {
			for _, u := range types.Addends(randomNormalType(r)) {
				if uk, _ := types.KindOf(u); uk == k {
					t3 = u
					break
				}
			}
		}
		left := LFuse(LFuse(t1, t2), t3)
		right := LFuse(t1, LFuse(t2, t3))
		if !types.Equal(left, right) {
			t.Logf("T=%s U=%s V=%s left=%s right=%s", t1, t2, t3, left, right)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
