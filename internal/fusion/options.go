package fusion

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// A Strategy is a record-fusion policy: it decides how much structure
// fusion preserves beyond the paper's exact algorithm. Strategies are
// small immutable configuration values — every one of them keeps Fuse
// commutative and associative (the algebra the parallel reduce phase
// depends on), they only move the precision/succinctness trade-off.
//
// The three built-in strategies:
//
//   - Paper{} is the algorithm of Figures 5-6, exactly.
//   - Tuples{} adds the positional-array extension sketched in the
//     paper's conclusion: equal-length tuples fuse element-wise.
//   - Tagged{} adds discriminated record unions (docs/UNIONS.md):
//     records carrying a low-cardinality discriminator field keep one
//     precise record type per discriminator value instead of being
//     fused into a single all-optional record.
//
// New policies implement this interface; params() keeps the set closed
// so the fusion kernel can switch on a plain struct instead of calling
// back into user code on every fuse (see docs/UNIONS.md for the
// add-a-policy recipe).
type Strategy interface {
	// Name identifies the strategy in logs, experiment reports and CLI
	// flags.
	Name() string
	// params lowers the strategy to the kernel's internal knobs. The
	// unexported method closes the interface: policies live here, next
	// to the algebra their proofs depend on.
	params() params
}

// Paper is the paper's exact fusion algorithm (the zero Options).
type Paper struct{}

// Name implements Strategy.
func (Paper) Name() string { return "paper" }

func (Paper) params() params { return params{} }

// Tuples preserves equal-length positional array types: arrays of the
// same length fuse element-wise instead of being simplified away, so
// fixed-shape arrays like [lon, lat] coordinate pairs keep their
// per-position types. Arrays of different lengths (or fusions with an
// already-simplified [T*]) still fall back to the paper's
// simplification, so the operator remains total.
type Tuples struct {
	// MaxLen bounds how long a preserved tuple may be; longer tuples
	// are simplified even when lengths match (they are almost certainly
	// collections, not fixed shapes). Zero means DefaultMaxTupleLen.
	MaxLen int
}

// Name implements Strategy.
func (Tuples) Name() string { return "tuples" }

func (s Tuples) params() params {
	n := s.MaxLen
	if n <= 0 {
		n = DefaultMaxTupleLen
	}
	return params{maxTuple: n}
}

// Tagged infers tagged unions: during phase one, records carrying a
// candidate discriminator field (a string-valued field named in Keys,
// or the single field of a one-field wrapper record) are promoted to
// single-case variants types, and fusion merges variants case-wise by
// tag instead of blending all fields into one record. When the
// hypothesis fails — more distinct tags than MaxVariants, or records
// that disagree on the discriminator — the union collapses to exactly
// what Paper would have produced, so the policy degrades gracefully.
type Tagged struct {
	// Inner supplies the non-record behaviour (tuple handling); nil
	// means Paper{}.
	Inner Strategy
	// Keys lists candidate discriminator field names in priority
	// order; nil means DefaultTagKeys.
	Keys []string
	// MaxVariants caps the number of distinct tags a union may hold
	// before collapsing; zero means DefaultMaxVariants.
	MaxVariants int
	// MaxTagLen caps the byte length of a string value considered a
	// tag (longer strings are payloads, not discriminators); zero
	// means DefaultMaxTagLen.
	MaxTagLen int
}

// Name implements Strategy.
func (s Tagged) Name() string {
	if s.Inner == nil {
		return "tagged"
	}
	return "tagged+" + s.Inner.Name()
}

func (s Tagged) params() params {
	var par params
	if s.Inner != nil {
		par = s.Inner.params()
	}
	par.tagged = true
	par.tagKeys = s.Keys
	if par.tagKeys == nil {
		par.tagKeys = DefaultTagKeys
	}
	par.maxVariants = s.MaxVariants
	if par.maxVariants <= 0 {
		par.maxVariants = DefaultMaxVariants
	}
	par.maxTagLen = s.MaxTagLen
	if par.maxTagLen <= 0 {
		par.maxTagLen = DefaultMaxTagLen
	}
	return par
}

// ParseStrategy resolves a strategy name as accepted by the CLI tools:
// "paper", "tuples", "tagged" and "tagged+tuples" (the composition of
// both extensions).
func ParseStrategy(name string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "paper":
		return Paper{}, nil
	case "tuples":
		return Tuples{}, nil
	case "tagged", "tagged+paper":
		return Tagged{}, nil
	case "tagged+tuples", "tuples+tagged":
		return Tagged{Inner: Tuples{}}, nil
	default:
		return nil, fmt.Errorf("fusion: unknown strategy %q (want paper, tuples, tagged or tagged+tuples)", name)
	}
}

// DefaultMaxTupleLen is the tuple-length cutoff used when
// Tuples.MaxLen is zero: long arrays are collections, short ones may be
// fixed shapes (pairs, triples, index spans).
const DefaultMaxTupleLen = 4

// DefaultTagKeys are the discriminator field names the tagged strategy
// considers when Tagged.Keys is nil, in priority order. They cover the
// discriminators of the paper's datasets (GitHub events' "type") and
// the webhook/event-log conventions.
var DefaultTagKeys = []string{"type", "event", "kind"}

// DefaultMaxVariants caps the number of distinct tags per union when
// Tagged.MaxVariants is zero. Genuine discriminators enumerate a
// handful of shapes; a field with dozens of observed values is an
// identifier, and the union collapses back to the paper's record.
const DefaultMaxVariants = 16

// DefaultMaxTagLen caps the byte length of a tag value when
// Tagged.MaxTagLen is zero.
const DefaultMaxTagLen = 40

// Options select a fusion policy. The zero value is the paper's exact
// algorithm (Figures 5-6). Strategy, when set, picks the record-fusion
// strategy directly; the PreserveTuples/MaxTupleLen pair is the older
// toggle for the Tuples strategy and is honoured when Strategy is nil.
//
// Every strategy keeps the algebra intact: fusion under any Options
// value is still commutative and associative. The property tests in
// options_test.go and tagged_test.go check this for each policy the
// same way the core tests check Theorems 5.4 and 5.5.
type Options struct {
	// PreserveTuples keeps equal-length positional array types
	// positional. Ignored when Strategy is non-nil.
	PreserveTuples bool
	// MaxTupleLen bounds how long a preserved tuple may be; zero means
	// DefaultMaxTupleLen. Ignored unless PreserveTuples is set.
	MaxTupleLen int
	// Strategy, when non-nil, selects the fusion strategy and
	// supersedes the legacy tuple fields.
	Strategy Strategy
}

// ResolvedStrategy returns the strategy the options denote: Strategy
// when set, otherwise the legacy tuple toggle lowered onto Tuples{} or
// Paper{}.
func (o Options) ResolvedStrategy() Strategy {
	if o.Strategy != nil {
		return o.Strategy
	}
	if o.PreserveTuples {
		return Tuples{MaxLen: o.MaxTupleLen}
	}
	return Paper{}
}

func (o Options) params() params { return o.ResolvedStrategy().params() }

// Fuse merges two types under this policy; with the zero Options it is
// exactly the package-level Fuse.
func (o Options) Fuse(t1, t2 types.Type) types.Type {
	return policy{par: o.params()}.fuse(t1, t2)
}

// FuseAll folds Fuse over ts from the left (ε for an empty slice).
func (o Options) FuseAll(ts []types.Type) types.Type {
	acc := types.Type(types.Empty)
	p := policy{par: o.params()}
	for _, t := range ts {
		acc = p.fuse(acc, t)
	}
	return acc
}

// Simplify rewrites array types into the policy's canonical form:
// tuples longer than the cutoff (all tuples, for the zero Options)
// become repeated types; preserved tuples keep their positions with
// each element simplified recursively.
func (o Options) Simplify(t types.Type) types.Type {
	return policy{par: o.params()}.simplify(t)
}

// Finalize lowers the intermediate variants states a tagged fusion
// leaves behind — collapsed unions become their plain record, weak
// wrapper hypotheses (fewer than two observed tags) fold back into the
// record fusion of their components — and returns the type unchanged
// under non-tagged strategies. The pipeline applies it once, after the
// final reduce, so the merge algebra never sees the lowered forms.
func (o Options) Finalize(t types.Type) types.Type {
	if !hasVariants(t) {
		return t
	}
	return policy{par: o.params()}.finalize(t)
}

// params is the internal, closed representation of a Strategy: the
// knobs the fusion kernel actually switches on. maxTuple == 0 means
// the paper's always-simplify behaviour; tagged enables the variants
// merge rules.
type params struct {
	maxTuple    int
	tagged      bool
	tagKeys     []string
	maxVariants int
	maxTagLen   int
}

// policy pairs the kernel knobs with an optional memo. A non-nil memo
// routes fuse and simplify through its caches (see memo.go); the zero
// policy is the paper's direct algorithm.
type policy struct {
	par  params
	memo *Memo
}

// keepTuple reports whether a tuple of length n stays positional.
func (p policy) keepTuple(n int) bool { return n > 0 && n <= p.par.maxTuple }
