package fusion

import (
	"repro/internal/types"
)

// Options select a fusion policy. The zero value is the paper's exact
// algorithm (Figures 5-6). PreserveTuples implements the extension the
// paper's conclusion proposes — "we want to improve the precision of the
// inference process for arrays" (Section 7): positional array types of
// the SAME length fuse element-wise instead of being simplified away,
// so fixed-shape arrays like [lon, lat] coordinate pairs keep their
// per-position types. Arrays of different lengths (or fusions with an
// already-simplified [T*]) still fall back to the paper's
// simplification, so the operator remains total.
//
// The positional policy keeps the algebra intact: fusion under any
// Options value is still commutative and associative (the element-wise
// fuse is commutative/associative per position, and the length-mismatch
// fallback commutes with it because collapse distributes over
// element-wise fusion). The property tests in options_test.go check
// this the same way the core tests check Theorems 5.4 and 5.5.
type Options struct {
	// PreserveTuples keeps equal-length positional array types
	// positional.
	PreserveTuples bool
	// MaxTupleLen bounds how long a preserved tuple may be; longer
	// tuples are simplified even when lengths match (they are almost
	// certainly collections, not fixed shapes). Zero means
	// DefaultMaxTupleLen. Ignored unless PreserveTuples is set.
	MaxTupleLen int
}

// DefaultMaxTupleLen is the tuple-length cutoff used when
// Options.MaxTupleLen is zero: long arrays are collections, short ones
// may be fixed shapes (pairs, triples, index spans).
const DefaultMaxTupleLen = 4

func (o Options) maxTupleLen() int {
	if !o.PreserveTuples {
		return 0
	}
	if o.MaxTupleLen <= 0 {
		return DefaultMaxTupleLen
	}
	return o.MaxTupleLen
}

// Fuse merges two types under this policy; with the zero Options it is
// exactly the package-level Fuse.
func (o Options) Fuse(t1, t2 types.Type) types.Type {
	return policy{maxTuple: o.maxTupleLen()}.fuse(t1, t2)
}

// FuseAll folds Fuse over ts from the left (ε for an empty slice).
func (o Options) FuseAll(ts []types.Type) types.Type {
	acc := types.Type(types.Empty)
	p := policy{maxTuple: o.maxTupleLen()}
	for _, t := range ts {
		acc = p.fuse(acc, t)
	}
	return acc
}

// Simplify rewrites array types into the policy's canonical form:
// tuples longer than the cutoff (all tuples, for the zero Options)
// become repeated types; preserved tuples keep their positions with
// each element simplified recursively.
func (o Options) Simplify(t types.Type) types.Type {
	return policy{maxTuple: o.maxTupleLen()}.simplify(t)
}

// policy is the internal representation of Options: maxTuple == 0 means
// the paper's always-simplify behaviour. A non-nil memo routes fuse and
// simplify through its caches (see memo.go); the zero policy is the
// paper's direct algorithm.
type policy struct {
	maxTuple int
	memo     *Memo
}

// keepTuple reports whether a tuple of length n stays positional.
func (p policy) keepTuple(n int) bool { return n > 0 && n <= p.maxTuple }
