// Package jsonschema exports the inferred types of internal/types to
// JSON Schema (draft-04 core vocabulary). The paper positions its type
// language as "a core part of the JSON Schema language studied in [20]"
// (Pezoa et al., WWW 2016); this exporter makes that relationship
// concrete and lets downstream tools consume inferred schemas.
//
// The mapping:
//
//	Null / Bool / Num / Str    {"type": "null" / "boolean" / "number" / "string"}
//	{a: T, b: U?}              {"type": "object", "properties": ..., "required": ["a"],
//	                            "additionalProperties": false}
//	[T1, ..., Tn]              {"type": "array", "items": [S1, ..., Sn],
//	                            "minItems": n, "maxItems": n, "additionalItems": false}
//	[T*]                       {"type": "array", "items": S}
//	[ε*]                       {"type": "array", "maxItems": 0}
//	{*: T}                     {"type": "object", "additionalProperties": S}
//	T1 + ... + Tn              {"anyOf": [S1, ..., Sn]}
//	variants(k){t: R, ...}     {"oneOf": [R1', ..., Rn', O]} with each Ri'
//	                           pinning the discriminator: properties[k]
//	                           gains {"const": ti} (const is a draft-06
//	                           keyword adopted here because it is the
//	                           idiomatic discriminator encoding; tools
//	                           bound to strict draft-04 read it as an
//	                           unknown — ignored — keyword)
//	wrapper{t: R, ...}         {"oneOf": [R1, ..., Rn, O]} — the single
//	                           required property name is the discriminator
//	ε                          {"not": {}}
//
// additionalProperties is false because inferred record types are
// complete: every key that occurs anywhere in the dataset is present
// (Section 1's "global description" property).
package jsonschema

import (
	"encoding/json"
	"fmt"

	"repro/internal/enrich"
	"repro/internal/types"
)

// Export converts a type to a JSON Schema document tree (the shapes
// encoding/json produces: map[string]any, []any, ...).
func Export(t types.Type) (map[string]any, error) {
	if t == nil {
		return nil, fmt.Errorf("jsonschema: nil type")
	}
	return export(t)
}

// Marshal renders the JSON Schema for t, including the draft-04 $schema
// marker, as indented JSON.
func Marshal(t types.Type) ([]byte, error) {
	doc, err := Export(t)
	if err != nil {
		return nil, err
	}
	doc["$schema"] = "http://json-schema.org/draft-04/schema#"
	return json.MarshalIndent(doc, "", "  ")
}

// ExportAnnotated converts a type to a JSON Schema document tree with
// enrichment annotations (docs/ENRICHMENT.md) woven in. The lattice is
// walked in parallel with the type: record fields descend into the
// matching lattice field, array elements into the shared element node.
// Annotations are placed by kind — numeric ranges on number schemas,
// format on string schemas, length statistics on array schemas — and
// whole-value annotations (approximate distinct counts, Bloom filters)
// on the top schema node of each path, so a union is annotated once
// rather than once per alternative. Annotations never overwrite
// structural keywords, and never tighten validation: minimum/maximum
// and format reflect only what was observed. A nil lattice yields the
// same document as Export.
func ExportAnnotated(t types.Type, l *enrich.Lattice) (map[string]any, error) {
	if t == nil {
		return nil, fmt.Errorf("jsonschema: nil type")
	}
	return exportAnn(t, l.Cursor(), true)
}

// MarshalAnnotated renders the annotated JSON Schema for t, including
// the draft-04 $schema marker, as indented JSON.
func MarshalAnnotated(t types.Type, l *enrich.Lattice) ([]byte, error) {
	doc, err := ExportAnnotated(t, l)
	if err != nil {
		return nil, err
	}
	doc["$schema"] = "http://json-schema.org/draft-04/schema#"
	return json.MarshalIndent(doc, "", "  ")
}

// annotate copies the cursor's annotations of the given kind into doc,
// skipping any key the structural export already set.
func annotate(doc map[string]any, c enrich.Cursor, kind enrich.Kind) {
	for k, v := range c.Annotations(kind) {
		if _, exists := doc[k]; !exists {
			doc[k] = v
		}
	}
}

// exportAnn mirrors export, threading a lattice cursor. includeValue
// marks the top schema node of a path: only there do whole-value
// annotations attach (union alternatives are exported with
// includeValue=false so the union node carries them once).
func exportAnn(t types.Type, c enrich.Cursor, includeValue bool) (map[string]any, error) {
	var doc map[string]any
	var err error
	switch tt := t.(type) {
	case types.Basic:
		doc, err = export(tt)
		if err != nil {
			return nil, err
		}
		switch tt {
		case types.Num:
			annotate(doc, c, enrich.KindNumber)
		case types.Str:
			annotate(doc, c, enrich.KindString)
		}
	case *types.Record:
		props := map[string]any{}
		var required []any
		for _, f := range tt.Fields() {
			s, err := exportAnn(f.Type, c.Field(f.Key), true)
			if err != nil {
				return nil, fmt.Errorf("field %q: %w", f.Key, err)
			}
			props[f.Key] = s
			if !f.Optional {
				required = append(required, f.Key)
			}
		}
		doc = map[string]any{
			"type":                 "object",
			"properties":           props,
			"additionalProperties": false,
		}
		if len(required) > 0 {
			doc["required"] = required
		}
	case *types.Tuple:
		items := make([]any, tt.Len())
		for i, e := range tt.Elems() {
			// Tuple positions share the lattice's collapsed element
			// node, mirroring the fusion rule that merges array
			// positions.
			s, err := exportAnn(e, c.Elem(), true)
			if err != nil {
				return nil, fmt.Errorf("tuple element %d: %w", i, err)
			}
			items[i] = s
		}
		n := float64(tt.Len())
		doc = map[string]any{
			"type":     "array",
			"minItems": n,
			"maxItems": n,
		}
		if len(items) > 0 {
			doc["items"] = items
			doc["additionalItems"] = false
		}
		annotate(doc, c, enrich.KindArray)
	case *types.Map:
		// A map schema collapses all keys into one element schema; the
		// lattice keeps per-key nodes, so there is no single node to
		// annotate the element with — stop annotating below here.
		elem, err := exportAnn(tt.Elem(), enrich.Cursor{}, true)
		if err != nil {
			return nil, fmt.Errorf("map element: %w", err)
		}
		doc = map[string]any{"type": "object", "additionalProperties": elem}
	case *types.Repeated:
		if _, isEmpty := tt.Elem().(types.EmptyType); isEmpty {
			doc = map[string]any{"type": "array", "maxItems": float64(0)}
		} else {
			s, err := exportAnn(tt.Elem(), c.Elem(), true)
			if err != nil {
				return nil, fmt.Errorf("array element: %w", err)
			}
			doc = map[string]any{"type": "array", "items": s}
		}
		annotate(doc, c, enrich.KindArray)
	case *types.Union:
		alts := make([]any, tt.Len())
		for i, a := range tt.Alts() {
			s, err := exportAnn(a, c, false)
			if err != nil {
				return nil, fmt.Errorf("union alternative %d: %w", i, err)
			}
			alts[i] = s
		}
		doc = map[string]any{"anyOf": alts}
	case *types.Variants:
		if tt.Collapsed() {
			return exportAnn(tt.Other(), c, includeValue)
		}
		// Every branch sits at the same path, so each descends with the
		// same cursor (record fields pick up their per-path annotations
		// through c.Field inside the record case) and whole-value
		// annotations attach once, on the oneOf node.
		branches := make([]any, 0, tt.Len()+1)
		for _, vc := range tt.Cases() {
			s, err := exportAnn(vc.Type, c, false)
			if err != nil {
				return nil, fmt.Errorf("variant %q: %w", vc.Tag, err)
			}
			pinDiscriminator(s, tt.Key(), vc.Tag)
			branches = append(branches, s)
		}
		if tt.Other() != nil {
			s, err := exportAnn(tt.Other(), c, false)
			if err != nil {
				return nil, fmt.Errorf("variants catch-all: %w", err)
			}
			branches = append(branches, s)
		}
		doc = map[string]any{"oneOf": branches}
	default:
		return export(t)
	}
	if includeValue {
		annotate(doc, c, enrich.KindValue)
	}
	return doc, nil
}

func export(t types.Type) (map[string]any, error) {
	switch tt := t.(type) {
	case types.Basic:
		switch tt {
		case types.Null:
			return map[string]any{"type": "null"}, nil
		case types.Bool:
			return map[string]any{"type": "boolean"}, nil
		case types.Num:
			return map[string]any{"type": "number"}, nil
		case types.Str:
			return map[string]any{"type": "string"}, nil
		}
		return nil, fmt.Errorf("jsonschema: unknown basic type %v", tt)
	case types.EmptyType:
		return map[string]any{"not": map[string]any{}}, nil
	case *types.Record:
		props := map[string]any{}
		var required []any
		for _, f := range tt.Fields() {
			s, err := export(f.Type)
			if err != nil {
				return nil, fmt.Errorf("field %q: %w", f.Key, err)
			}
			props[f.Key] = s
			if !f.Optional {
				required = append(required, f.Key)
			}
		}
		doc := map[string]any{
			"type":                 "object",
			"properties":           props,
			"additionalProperties": false,
		}
		if len(required) > 0 {
			doc["required"] = required
		}
		return doc, nil
	case *types.Tuple:
		items := make([]any, tt.Len())
		for i, e := range tt.Elems() {
			s, err := export(e)
			if err != nil {
				return nil, fmt.Errorf("tuple element %d: %w", i, err)
			}
			items[i] = s
		}
		n := float64(tt.Len())
		doc := map[string]any{
			"type":     "array",
			"minItems": n,
			"maxItems": n,
		}
		if len(items) > 0 {
			doc["items"] = items
			doc["additionalItems"] = false
		}
		return doc, nil
	case *types.Map:
		elem, err := export(tt.Elem())
		if err != nil {
			return nil, fmt.Errorf("map element: %w", err)
		}
		return map[string]any{"type": "object", "additionalProperties": elem}, nil
	case *types.Repeated:
		if _, isEmpty := tt.Elem().(types.EmptyType); isEmpty {
			return map[string]any{"type": "array", "maxItems": float64(0)}, nil
		}
		s, err := export(tt.Elem())
		if err != nil {
			return nil, fmt.Errorf("array element: %w", err)
		}
		return map[string]any{"type": "array", "items": s}, nil
	case *types.Union:
		alts := make([]any, tt.Len())
		for i, a := range tt.Alts() {
			s, err := export(a)
			if err != nil {
				return nil, fmt.Errorf("union alternative %d: %w", i, err)
			}
			alts[i] = s
		}
		return map[string]any{"anyOf": alts}, nil
	case *types.Variants:
		if tt.Collapsed() {
			return export(tt.Other())
		}
		branches := make([]any, 0, tt.Len()+1)
		for _, c := range tt.Cases() {
			s, err := export(c.Type)
			if err != nil {
				return nil, fmt.Errorf("variant %q: %w", c.Tag, err)
			}
			pinDiscriminator(s, tt.Key(), c.Tag)
			branches = append(branches, s)
		}
		if tt.Other() != nil {
			s, err := export(tt.Other())
			if err != nil {
				return nil, fmt.Errorf("variants catch-all: %w", err)
			}
			branches = append(branches, s)
		}
		return map[string]any{"oneOf": branches}, nil
	default:
		return nil, fmt.Errorf("jsonschema: unknown type %T", t)
	}
}

// pinDiscriminator narrows the discriminator property of a keyed
// variant's branch schema to its tag. Wrapper variants pass key == ""
// and are left alone — their required single property name already
// discriminates.
func pinDiscriminator(branch map[string]any, key, tag string) {
	if key == "" {
		return
	}
	props, ok := branch["properties"].(map[string]any)
	if !ok {
		return
	}
	if ps, ok := props[key].(map[string]any); ok {
		ps["const"] = tag
	} else {
		props[key] = map[string]any{"type": "string", "const": tag}
	}
}
