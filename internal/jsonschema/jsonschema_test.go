package jsonschema

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/fusion"
	"repro/internal/infer"
	"repro/internal/types"
	"repro/internal/value"
)

func TestExportBasics(t *testing.T) {
	cases := []struct {
		t    types.Type
		want string // substring of marshaled schema
	}{
		{types.Null, `"type": "null"`},
		{types.Bool, `"type": "boolean"`},
		{types.Num, `"type": "number"`},
		{types.Str, `"type": "string"`},
		{types.Empty, `"not": {}`},
	}
	for _, c := range cases {
		data, err := Marshal(c.t)
		if err != nil {
			t.Fatalf("Marshal(%s): %v", c.t, err)
		}
		if !strings.Contains(string(data), c.want) {
			t.Errorf("Marshal(%s) = %s, missing %q", c.t, data, c.want)
		}
	}
}

func TestMarshalIsValidJSONWithSchemaMarker(t *testing.T) {
	data, err := Marshal(types.MustParse("{a: Num, b: (Str + Null)?}"))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if doc["$schema"] != "http://json-schema.org/draft-04/schema#" {
		t.Errorf("$schema = %v", doc["$schema"])
	}
}

func TestExportRecord(t *testing.T) {
	doc, err := Export(types.MustParse("{a: Num, b: Str?}"))
	if err != nil {
		t.Fatal(err)
	}
	if doc["type"] != "object" {
		t.Errorf("type = %v", doc["type"])
	}
	props := doc["properties"].(map[string]any)
	if len(props) != 2 {
		t.Errorf("properties = %v", props)
	}
	req := doc["required"].([]any)
	if len(req) != 1 || req[0] != "a" {
		t.Errorf("required = %v", req)
	}
	if doc["additionalProperties"] != false {
		t.Error("additionalProperties should be false")
	}
}

func TestExportAllOptionalRecordHasNoRequired(t *testing.T) {
	doc, err := Export(types.MustParse("{a: Num?, b: Str?}"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["required"]; ok {
		t.Error("required should be absent when every field is optional")
	}
}

func TestExportArrays(t *testing.T) {
	// Tuple.
	doc, err := Export(types.MustParse("[Num, Str]"))
	if err != nil {
		t.Fatal(err)
	}
	if doc["minItems"] != 2.0 || doc["maxItems"] != 2.0 {
		t.Errorf("tuple bounds = %v..%v", doc["minItems"], doc["maxItems"])
	}
	if items := doc["items"].([]any); len(items) != 2 {
		t.Errorf("items = %v", items)
	}
	// Repeated.
	doc, err = Export(types.MustParse("[Num*]"))
	if err != nil {
		t.Fatal(err)
	}
	if _, isList := doc["items"].([]any); isList {
		t.Error("repeated type should have a single items schema")
	}
	// Empty array type.
	doc, err = Export(types.MustParse("[ε*]"))
	if err != nil {
		t.Fatal(err)
	}
	if doc["maxItems"] != 0.0 {
		t.Errorf("[ε*] maxItems = %v", doc["maxItems"])
	}
	// Empty tuple [] also admits only the empty array.
	doc, err = Export(types.MustParse("[]"))
	if err != nil {
		t.Fatal(err)
	}
	if doc["maxItems"] != 0.0 {
		t.Errorf("[] maxItems = %v", doc["maxItems"])
	}
}

func TestExportUnion(t *testing.T) {
	doc, err := Export(types.MustParse("Num + Str"))
	if err != nil {
		t.Fatal(err)
	}
	if alts := doc["anyOf"].([]any); len(alts) != 2 {
		t.Errorf("anyOf = %v", alts)
	}
}

func TestExportNil(t *testing.T) {
	if _, err := Export(nil); err == nil {
		t.Error("Export(nil) should fail")
	}
}

// validate is a miniature draft-04 validator for exactly the vocabulary
// Export emits. It lets the property test below check that the exported
// schema accepts the same values as types.Member.
func validate(doc map[string]any, v value.Value) bool {
	if anyOf, ok := doc["anyOf"].([]any); ok {
		for _, alt := range anyOf {
			if validate(alt.(map[string]any), v) {
				return true
			}
		}
		return false
	}
	if _, ok := doc["not"]; ok {
		return false // Export only emits "not": {}
	}
	switch doc["type"] {
	case "null":
		return v.Kind() == value.KindNull
	case "boolean":
		return v.Kind() == value.KindBool
	case "number":
		return v.Kind() == value.KindNum
	case "string":
		return v.Kind() == value.KindStr
	case "object":
		rec, ok := v.(*value.Record)
		if !ok {
			return false
		}
		props, _ := doc["properties"].(map[string]any)
		addl, addlIsSchema := doc["additionalProperties"].(map[string]any)
		for _, f := range rec.Fields() {
			sub, ok := props[f.Key].(map[string]any)
			if !ok {
				if addlIsSchema {
					if !validate(addl, f.Value) {
						return false
					}
					continue
				}
				return false // additionalProperties: false
			}
			if !validate(sub, f.Value) {
				return false
			}
		}
		if req, ok := doc["required"].([]any); ok {
			for _, k := range req {
				if !rec.Has(k.(string)) {
					return false
				}
			}
		}
		return true
	case "array":
		arr, ok := v.(value.Array)
		if !ok {
			return false
		}
		if min, ok := doc["minItems"].(float64); ok && float64(len(arr)) < min {
			return false
		}
		if max, ok := doc["maxItems"].(float64); ok && float64(len(arr)) > max {
			return false
		}
		switch items := doc["items"].(type) {
		case []any:
			for i, e := range arr {
				if i >= len(items) {
					return false // additionalItems: false
				}
				if !validate(items[i].(map[string]any), e) {
					return false
				}
			}
			return true
		case map[string]any:
			for _, e := range arr {
				if !validate(items, e) {
					return false
				}
			}
			return true
		default:
			return true // no items constraint (empty arrays only)
		}
	default:
		return false
	}
}

type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func randomValue(r *rng, depth int) value.Value {
	max := 6
	if depth <= 0 {
		max = 4
	}
	switch r.intn(max) {
	case 0:
		return value.Null{}
	case 1:
		return value.Bool(r.intn(2) == 0)
	case 2:
		return value.Num(float64(r.intn(40)))
	case 3:
		return value.Str(strings.Repeat("v", r.intn(3)))
	case 4:
		var fs []value.Field
		seen := map[string]bool{}
		for i := 0; i < r.intn(4); i++ {
			k := string(rune('a' + r.intn(5)))
			if seen[k] {
				continue
			}
			seen[k] = true
			fs = append(fs, value.Field{Key: k, Value: randomValue(r, depth-1)})
		}
		return value.MustRecord(fs...)
	default:
		var elems value.Array
		for i := 0; i < r.intn(4); i++ {
			elems = append(elems, randomValue(r, depth-1))
		}
		if elems == nil {
			elems = value.Array{}
		}
		return elems
	}
}

func TestPropertyExportAgreesWithMember(t *testing.T) {
	// For fused types T and random values v: v ∈ ⟦T⟧ iff the exported
	// JSON Schema validates v.
	f := func(seed uint64) bool {
		r := &rng{s: seed | 1}
		t1 := infer.Infer(randomValue(r, 3))
		t2 := infer.Infer(randomValue(r, 3))
		fused := fusion.Fuse(t1, t2)
		doc, err := Export(fused)
		if err != nil {
			return false
		}
		for i := 0; i < 6; i++ {
			v := randomValue(r, 3)
			if types.Member(v, fused) != validate(doc, v) {
				t.Logf("type %s value %s member=%v", fused, value.JSON(v), types.Member(v, fused))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyExportValidatesSourceValues(t *testing.T) {
	f := func(seed uint64) bool {
		r := &rng{s: seed | 1}
		v1 := randomValue(r, 3)
		v2 := randomValue(r, 3)
		fused := fusion.Fuse(infer.Infer(v1), infer.Infer(v2))
		doc, err := Export(fused)
		if err != nil {
			return false
		}
		return validate(doc, v1) && validate(doc, v2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExportMapType(t *testing.T) {
	doc, err := Export(types.MustParse("{*: {v: Num}}"))
	if err != nil {
		t.Fatal(err)
	}
	if doc["type"] != "object" {
		t.Errorf("type = %v", doc["type"])
	}
	addl, ok := doc["additionalProperties"].(map[string]any)
	if !ok {
		t.Fatalf("additionalProperties = %v", doc["additionalProperties"])
	}
	if addl["type"] != "object" {
		t.Errorf("element schema = %v", addl)
	}
	// The mini validator agrees with Member on the map type.
	m := types.MustParse("{*: Num}")
	mdoc, err := Export(m)
	if err != nil {
		t.Fatal(err)
	}
	yes := value.Obj("anything", value.Num(1), "other", value.Num(2))
	no := value.Obj("bad", value.Str("s"))
	if !validate(mdoc, yes) || validate(mdoc, no) {
		t.Errorf("validator disagrees on map type: yes=%v no=%v", validate(mdoc, yes), validate(mdoc, no))
	}
	if types.Member(yes, m) != validate(mdoc, yes) || types.Member(no, m) != validate(mdoc, no) {
		t.Error("validator and Member disagree")
	}
}
