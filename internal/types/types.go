// Package types implements the JSON type language of Figure 3 of the
// paper "Schema Inference for Massive JSON Datasets" (EDBT 2017).
//
// The language has basic types (Null, Bool, Num, Str), record types whose
// fields may be optional, array types in two forms — tuple types
// [T1, ..., Tn] produced by the initial inference, and simplified array
// types [T*] produced by fusion — union types T + U, and the empty type ε.
//
// Types are immutable once constructed. All constructors canonicalize:
// record fields are sorted by key, union alternatives are flattened,
// deduplicated and sorted, so structurally equal types are Equal and
// render to identical strings. This canonical form is what makes the
// fusion operator's commutativity observable as plain equality.
package types

import (
	"fmt"
	"sort"
	"strings"
)

// Kind is the paper's kind() classification of non-union types:
// null=0, bool=1, num=2, str=3, record=4, array=5. Tuple array types and
// simplified array types share the array kind, exactly as in the paper
// (kind(at) = kind(sat) = 5), which is what makes fusion merge them.
type Kind int

// Kinds, with the paper's numeric codes.
const (
	KindNull Kind = iota
	KindBool
	KindNum
	KindStr
	KindRecord
	KindArray
)

// String returns the paper's name for the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "Null"
	case KindBool:
		return "Bool"
	case KindNum:
		return "Num"
	case KindStr:
		return "Str"
	case KindRecord:
		return "Record"
	case KindArray:
		return "Array"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Type is a type expression of the schema language. The concrete types
// are Basic, *Record, *Tuple, *Repeated, *Union, and Empty.
type Type interface {
	// Size returns the number of nodes of the type's abstract syntax
	// tree, the succinctness measure used throughout the paper's
	// evaluation (Tables 2-5). The convention is documented on Size.
	Size() int
	// String renders the type in the paper's concrete syntax; see
	// the package documentation of the printer in print.go.
	String() string
	// ordinal is a total-order discriminant used by Compare. It refines
	// Kind by separating tuples from repeated arrays and giving unions
	// and the empty type their own slots.
	ordinal() int
}

// Basic is one of the four basic types Null, Bool, Num, Str.
type Basic Kind

// The four basic types.
const (
	Null = Basic(KindNull)
	Bool = Basic(KindBool)
	Num  = Basic(KindNum)
	Str  = Basic(KindStr)
)

// Empty is the empty type ε: no value belongs to it. It only appears as
// the body of the simplified empty-array type [ε*] and as the fusion
// identity; the algorithms never place it anywhere else.
type EmptyType struct{}

// Empty is the sole value of the empty type ε.
var Empty = EmptyType{}

// Field is a record-type field: a key, the type of its content, and
// whether the field is optional (the paper's (l : T)? notation).
type Field struct {
	Key      string
	Type     Type
	Optional bool
}

// Record is a record type {l1: T1 [?], ..., ln: Tn [?]}. Fields are
// unique by key and kept sorted by key. Construct with NewRecord.
type Record struct {
	fields []Field
}

// Tuple is a positional array type [T1, ..., Tn] as produced by the
// initial inference phase (ArrT/EArrT in the paper). The empty tuple is
// the empty-array type EArrT.
type Tuple struct {
	elems []Type
}

// Repeated is a simplified array type [T*]: arrays of any length whose
// elements all belong to T. [ε*] denotes exactly the empty array.
type Repeated struct {
	elem Type
}

// Union is a union type T1 + ... + Tn with n >= 2. Alternatives are
// non-union, non-empty types kept deduplicated and sorted in canonical
// order. Construct with NewUnion, which flattens and canonicalizes.
type Union struct {
	alts []Type
}

func (Basic) ordinal() int     { return 1 }
func (EmptyType) ordinal() int { return 0 }
func (*Record) ordinal() int   { return 2 }
func (*Tuple) ordinal() int    { return 5 }
func (*Repeated) ordinal() int { return 6 }
func (*Union) ordinal() int    { return 7 }

// KindOf returns the paper's kind of a non-union, non-empty type and
// true; for Union and Empty it returns false, since the paper's kind()
// is only defined on union addends.
func KindOf(t Type) (Kind, bool) {
	switch t.(type) {
	case Basic:
		return Kind(t.(Basic)), true
	case *Record, *Map, *Variants:
		return KindRecord, true
	case *Tuple, *Repeated:
		return KindArray, true
	default:
		return 0, false
	}
}

// NewRecord builds a record type. It returns an error if two fields share
// a key or any field type is nil. Field order in the input is irrelevant;
// fields are stored sorted by key.
func NewRecord(fields ...Field) (*Record, error) {
	fs := make([]Field, len(fields))
	copy(fs, fields)
	sort.SliceStable(fs, func(i, j int) bool { return fs[i].Key < fs[j].Key })
	for i, f := range fs {
		if f.Type == nil {
			return nil, fmt.Errorf("types: record field %q has nil type", f.Key)
		}
		if i > 0 && fs[i-1].Key == f.Key {
			return nil, fmt.Errorf("types: duplicate record type key %q", f.Key)
		}
	}
	return &Record{fields: fs}, nil
}

// MustRecord is NewRecord that panics on error; for literals and tests.
func MustRecord(fields ...Field) *Record {
	r, err := NewRecord(fields...)
	if err != nil {
		panic(err)
	}
	return r
}

// Fields returns the record's fields in key order. Callers must not
// modify the returned slice.
func (r *Record) Fields() []Field { return r.fields }

// Len reports the number of fields.
func (r *Record) Len() int { return len(r.fields) }

// Get returns the field with the given key and true, or a zero Field and
// false if the key is absent.
func (r *Record) Get(key string) (Field, bool) {
	i := sort.Search(len(r.fields), func(i int) bool { return r.fields[i].Key >= key })
	if i < len(r.fields) && r.fields[i].Key == key {
		return r.fields[i], true
	}
	return Field{}, false
}

// Keys returns the record's keys in order.
func (r *Record) Keys() []string {
	ks := make([]string, len(r.fields))
	for i, f := range r.fields {
		ks[i] = f.Key
	}
	return ks
}

// NewTuple builds a positional array type. A nil element is rejected.
func NewTuple(elems ...Type) (*Tuple, error) {
	es := make([]Type, len(elems))
	copy(es, elems)
	for i, e := range es {
		if e == nil {
			return nil, fmt.Errorf("types: tuple element %d is nil", i)
		}
	}
	return &Tuple{elems: es}, nil
}

// MustTuple is NewTuple that panics on error.
func MustTuple(elems ...Type) *Tuple {
	t, err := NewTuple(elems...)
	if err != nil {
		panic(err)
	}
	return t
}

// EmptyTuple is the empty-array type EArrT, i.e. [].
var EmptyTuple = &Tuple{}

// Elems returns the tuple's element types in order. Callers must not
// modify the returned slice.
func (t *Tuple) Elems() []Type { return t.elems }

// Len reports the number of positional elements.
func (t *Tuple) Len() int { return len(t.elems) }

// NewRepeated builds the simplified array type [elem*].
func NewRepeated(elem Type) (*Repeated, error) {
	if elem == nil {
		return nil, fmt.Errorf("types: repeated element type is nil")
	}
	return &Repeated{elem: elem}, nil
}

// MustRepeated is NewRepeated that panics on error.
func MustRepeated(elem Type) *Repeated {
	r, err := NewRepeated(elem)
	if err != nil {
		panic(err)
	}
	return r
}

// Elem returns the element type of the repeated array type.
func (r *Repeated) Elem() Type { return r.elem }

// NewUnion builds the canonical union of the given types: nested unions
// are flattened, ε is dropped (it is the identity of +), duplicates are
// removed, and alternatives are sorted. The result is Empty for zero
// remaining alternatives and the single alternative for one; only two or
// more alternatives yield a *Union.
func NewUnion(ts ...Type) (Type, error) {
	var alts []Type
	var flatten func(Type) error
	flatten = func(t Type) error {
		switch tt := t.(type) {
		case nil:
			return fmt.Errorf("types: nil union alternative")
		case EmptyType:
			return nil
		case *Union:
			for _, a := range tt.alts {
				if err := flatten(a); err != nil {
					return err
				}
			}
			return nil
		default:
			alts = append(alts, t)
			return nil
		}
	}
	for _, t := range ts {
		if err := flatten(t); err != nil {
			return nil, err
		}
	}
	sort.SliceStable(alts, func(i, j int) bool { return Compare(alts[i], alts[j]) < 0 })
	// Deduplicate structurally equal alternatives: T + T = T.
	dst := alts[:0]
	for i, a := range alts {
		if i == 0 || Compare(alts[i-1], a) != 0 {
			dst = append(dst, a)
		}
	}
	alts = dst
	switch len(alts) {
	case 0:
		return Empty, nil
	case 1:
		return alts[0], nil
	default:
		return &Union{alts: alts}, nil
	}
}

// MustUnion is NewUnion that panics on error.
func MustUnion(ts ...Type) Type {
	u, err := NewUnion(ts...)
	if err != nil {
		panic(err)
	}
	return u
}

// Alts returns the union's alternatives in canonical order. Callers must
// not modify the returned slice.
func (u *Union) Alts() []Type { return u.alts }

// Len reports the number of alternatives (always >= 2).
func (u *Union) Len() int { return len(u.alts) }

// Size implementations. The convention, used consistently in Tables 2-5:
// a basic type or ε is one node; a record is one node plus, per field,
// one field node plus the size of the field's type; a tuple is one node
// plus the sizes of its elements; a repeated type [T*] is one node plus
// the size of T; a union of n alternatives contributes n-1 binary '+'
// nodes plus the sizes of the alternatives.

// Size returns 1: a basic type is a single AST node.
func (Basic) Size() int { return 1 }

// Size returns 1: ε is a single AST node.
func (EmptyType) Size() int { return 1 }

// Size counts one node for the record plus one per field plus the fields'
// type sizes.
func (r *Record) Size() int {
	n := 1
	for _, f := range r.fields {
		n += 1 + f.Type.Size()
	}
	return n
}

// Size counts one node for the array plus the element sizes.
func (t *Tuple) Size() int {
	n := 1
	for _, e := range t.elems {
		n += e.Size()
	}
	return n
}

// Size counts one node for the star plus the element type's size.
func (r *Repeated) Size() int { return 1 + r.elem.Size() }

// Size counts n-1 binary '+' nodes plus the alternatives' sizes.
func (u *Union) Size() int {
	n := len(u.alts) - 1
	for _, a := range u.alts {
		n += a.Size()
	}
	return n
}

// Equal reports structural equality of two canonical types.
func Equal(a, b Type) bool { return Compare(a, b) == 0 }

// Compare defines a total order over canonical types: first by ordinal
// (ε < basic < record < map < variants < tuple < repeated < union),
// basics by kind,
// records lexicographically by (key, optionality, type), tuples and
// unions lexicographically by components.
func Compare(a, b Type) int {
	if oa, ob := a.ordinal(), b.ordinal(); oa != ob {
		return oa - ob
	}
	switch at := a.(type) {
	case EmptyType:
		return 0
	case Basic:
		return int(at) - int(b.(Basic))
	case *Record:
		bt := b.(*Record)
		for i := 0; i < len(at.fields) && i < len(bt.fields); i++ {
			fa, fb := at.fields[i], bt.fields[i]
			if c := strings.Compare(fa.Key, fb.Key); c != 0 {
				return c
			}
			if fa.Optional != fb.Optional {
				if fa.Optional {
					return 1
				}
				return -1
			}
			if c := Compare(fa.Type, fb.Type); c != 0 {
				return c
			}
		}
		return len(at.fields) - len(bt.fields)
	case *Map:
		return Compare(at.elem, b.(*Map).elem)
	case *Variants:
		return compareVariants(at, b.(*Variants))
	case *Tuple:
		bt := b.(*Tuple)
		for i := 0; i < len(at.elems) && i < len(bt.elems); i++ {
			if c := Compare(at.elems[i], bt.elems[i]); c != 0 {
				return c
			}
		}
		return len(at.elems) - len(bt.elems)
	case *Repeated:
		return Compare(at.elem, b.(*Repeated).elem)
	case *Union:
		bt := b.(*Union)
		for i := 0; i < len(at.alts) && i < len(bt.alts); i++ {
			if c := Compare(at.alts[i], bt.alts[i]); c != 0 {
				return c
			}
		}
		return len(at.alts) - len(bt.alts)
	default:
		panic(fmt.Sprintf("types: unknown type %T", a))
	}
}

// Addends returns the list of non-union addends of t: the paper's o(T)
// function (Figure 5). A union yields its alternatives, ε yields the
// empty list, and any other type yields itself.
func Addends(t Type) []Type {
	switch tt := t.(type) {
	case EmptyType:
		return nil
	case *Union:
		return tt.alts
	default:
		return []Type{t}
	}
}

// IsNormal reports whether t is a normal type in the paper's sense: in
// every union occurring anywhere inside t, each kind occurs at most once.
// The fusion algorithm both requires and preserves this invariant
// (Theorems 5.2, 5.4, 5.5 are stated for normal types).
func IsNormal(t Type) bool {
	switch tt := t.(type) {
	case Basic, EmptyType:
		return true
	case *Record:
		for _, f := range tt.fields {
			if !IsNormal(f.Type) {
				return false
			}
		}
		return true
	case *Tuple:
		for _, e := range tt.elems {
			if !IsNormal(e) {
				return false
			}
		}
		return true
	case *Map:
		return IsNormal(tt.elem)
	case *Variants:
		for _, c := range tt.cases {
			if !IsNormal(c.Type) {
				return false
			}
		}
		if tt.other != nil {
			return IsNormal(tt.other)
		}
		return true
	case *Repeated:
		return IsNormal(tt.elem)
	case *Union:
		var seen [6]bool
		for _, a := range tt.alts {
			k, ok := KindOf(a)
			if !ok {
				return false // nested union or ε: not even canonical
			}
			if seen[k] {
				return false
			}
			seen[k] = true
			if !IsNormal(a) {
				return false
			}
		}
		return true
	default:
		panic(fmt.Sprintf("types: unknown type %T", t))
	}
}

// Depth returns the nesting depth of the type tree: basic types and ε
// have depth 1; records, tuples, repeated types and unions have depth one
// more than their deepest component.
func Depth(t Type) int {
	switch tt := t.(type) {
	case Basic, EmptyType:
		return 1
	case *Record:
		max := 0
		for _, f := range tt.fields {
			if d := Depth(f.Type); d > max {
				max = d
			}
		}
		return 1 + max
	case *Tuple:
		max := 0
		for _, e := range tt.elems {
			if d := Depth(e); d > max {
				max = d
			}
		}
		return 1 + max
	case *Map:
		return 1 + Depth(tt.elem)
	case *Variants:
		max := 0
		for _, c := range tt.cases {
			if d := Depth(c.Type); d > max {
				max = d
			}
		}
		if tt.other != nil {
			if d := Depth(tt.other); d > max {
				max = d
			}
		}
		return 1 + max
	case *Repeated:
		return 1 + Depth(tt.elem)
	case *Union:
		max := 0
		for _, a := range tt.alts {
			if d := Depth(a); d > max {
				max = d
			}
		}
		return 1 + max
	default:
		panic(fmt.Sprintf("types: unknown type %T", t))
	}
}

// Walk calls fn for t and every type nested inside it, in depth-first
// pre-order. If fn returns false the walk does not descend into that
// subtree.
func Walk(t Type, fn func(Type) bool) {
	if !fn(t) {
		return
	}
	switch tt := t.(type) {
	case *Record:
		for _, f := range tt.fields {
			Walk(f.Type, fn)
		}
	case *Tuple:
		for _, e := range tt.elems {
			Walk(e, fn)
		}
	case *Map:
		Walk(tt.elem, fn)
	case *Variants:
		for _, c := range tt.cases {
			Walk(c.Type, fn)
		}
		if tt.other != nil {
			Walk(tt.other, fn)
		}
	case *Repeated:
		Walk(tt.elem, fn)
	case *Union:
		for _, a := range tt.alts {
			Walk(a, fn)
		}
	}
}
