package types

import (
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func TestMemberBasics(t *testing.T) {
	cases := []struct {
		v    value.Value
		t    Type
		want bool
	}{
		{value.Null{}, Null, true},
		{value.Null{}, Bool, false},
		{value.Bool(true), Bool, true},
		{value.Num(1), Num, true},
		{value.Str("x"), Str, true},
		{value.Str("x"), Num, false},
		{value.Num(1), Empty, false},
		{value.Null{}, Empty, false},
		{value.Num(1), uni(Num, Str), true},
		{value.Bool(true), uni(Num, Str), false},
	}
	for _, c := range cases {
		if got := Member(c.v, c.t); got != c.want {
			t.Errorf("Member(%s, %s) = %v, want %v", value.JSON(c.v), c.t, got, c.want)
		}
	}
}

func TestMemberRecords(t *testing.T) {
	rt := rec(fld("a", Num), opt("b", Str))
	cases := []struct {
		v    value.Value
		want bool
	}{
		{value.Obj("a", value.Num(1)), true},                      // optional absent
		{value.Obj("a", value.Num(1), "b", value.Str("x")), true}, // optional present
		{value.Obj("b", value.Str("x")), false},                   // mandatory absent
		{value.Obj("a", value.Str("no")), false},                  // wrong field type
		{value.Obj("a", value.Num(1), "c", value.Num(2)), false},  // unknown key
		{value.Obj("a", value.Num(1), "b", value.Num(2)), false},  // optional wrong type
		{value.MustRecord(), false},                               // mandatory absent
		{value.Num(3), false},                                     // not a record
	}
	for _, c := range cases {
		if got := Member(c.v, rt); got != c.want {
			t.Errorf("Member(%s, %s) = %v, want %v", value.JSON(c.v), rt, got, c.want)
		}
	}
	if !Member(value.MustRecord(), rec()) {
		t.Error("{} should belong to {}")
	}
	if !Member(value.MustRecord(), rec(opt("a", Num))) {
		t.Error("{} should belong to {a: Num?}")
	}
}

func TestMemberArrays(t *testing.T) {
	cases := []struct {
		v    value.Value
		t    Type
		want bool
	}{
		{value.Arr(), tup(), true},
		{value.Arr(value.Num(1)), tup(), false},
		{value.Arr(value.Num(1), value.Str("x")), tup(Num, Str), true},
		{value.Arr(value.Str("x"), value.Num(1)), tup(Num, Str), false}, // order matters
		{value.Arr(value.Num(1)), tup(Num, Str), false},                 // length matters
		{value.Arr(), rep(Num), true},                                   // [] in every [T*]
		{value.Arr(), rep(Empty), true},                                 // [] in [ε*]
		{value.Arr(value.Num(1)), rep(Empty), false},
		{value.Arr(value.Num(1), value.Num(2), value.Num(3)), rep(Num), true},
		{value.Arr(value.Num(1), value.Str("x")), rep(Num), false},
		{value.Arr(value.Num(1), value.Str("x")), rep(uni(Num, Str)), true},
		{value.Num(1), rep(Num), false},
		{value.Num(1), tup(Num), false},
	}
	for _, c := range cases {
		if got := Member(c.v, c.t); got != c.want {
			t.Errorf("Member(%s, %s) = %v, want %v", value.JSON(c.v), c.t, got, c.want)
		}
	}
}

func TestMemberNested(t *testing.T) {
	// The paper's Section 2 example: {A: (Null+Str)?, B: Num+Bool, C: Str?}.
	tt := MustParse("{A: (Null + Str)?, B: Num + Bool, C: Str?}")
	yes := []value.Value{
		value.Obj("A", value.Str("s"), "B", value.Num(1)),
		value.Obj("A", value.Null{}, "B", value.Bool(true), "C", value.Str("c")),
		value.Obj("B", value.Num(0)),
	}
	no := []value.Value{
		value.Obj("A", value.Str("s")),                  // B missing
		value.Obj("A", value.Num(8), "B", value.Num(1)), // A wrong
		value.Obj("B", value.Str("not num or bool")),
		value.Obj("B", value.Num(1), "D", value.Num(2)), // unknown key
	}
	for _, v := range yes {
		if !Member(v, tt) {
			t.Errorf("%s should belong to %s", value.JSON(v), tt)
		}
	}
	for _, v := range no {
		if Member(v, tt) {
			t.Errorf("%s should NOT belong to %s", value.JSON(v), tt)
		}
	}
}

func TestSubtypeBasics(t *testing.T) {
	cases := []struct {
		t, u Type
		want bool
	}{
		{Num, Num, true},
		{Num, Str, false},
		{Empty, Num, true},
		{Empty, Empty, true},
		{Num, Empty, false},
		{Num, uni(Num, Str), true},
		{Bool, uni(Num, Str), false},
		{uni(Num, Str), uni(Num, Str, Bool), true},
		{uni(Num, Str, Bool), uni(Num, Str), false},
		{uni(Num, Str), Num, false},
	}
	for _, c := range cases {
		if got := Subtype(c.t, c.u); got != c.want {
			t.Errorf("Subtype(%s, %s) = %v, want %v", c.t, c.u, got, c.want)
		}
	}
}

func TestSubtypeRecords(t *testing.T) {
	cases := []struct {
		t, u string
		want bool
	}{
		{"{a: Num}", "{a: Num}", true},
		{"{a: Num}", "{a: Num + Str}", true},
		{"{a: Num}", "{a: Num?}", true},         // mandatory <= optional
		{"{a: Num?}", "{a: Num}", false},        // optional not <= mandatory
		{"{a: Num}", "{a: Num, b: Str?}", true}, // extra optional ok
		{"{a: Num}", "{a: Num, b: Str}", false}, // extra mandatory not ok
		{"{a: Num, b: Str}", "{a: Num}", false}, // left-only key not allowed
		{"{a: Num?}", "{a: Num?, b: Bool?}", true},
		{"{}", "{a: Num?}", true},
		{"{}", "{a: Num}", false},
		{"{a: {b: Num}}", "{a: {b: Num + Null}}", true},
		{"{a: {b: Num}}", "{a: {b: Str}}", false},
	}
	for _, c := range cases {
		tt, uu := MustParse(c.t), MustParse(c.u)
		if got := Subtype(tt, uu); got != c.want {
			t.Errorf("Subtype(%s, %s) = %v, want %v", c.t, c.u, got, c.want)
		}
	}
}

func TestSubtypeArrays(t *testing.T) {
	cases := []struct {
		t, u string
		want bool
	}{
		{"[Num, Str]", "[Num, Str]", true},
		{"[Num, Str]", "[Num + Bool, Str]", true},
		{"[Num]", "[Num, Num]", false},
		{"[Num, Num]", "[Num*]", true},
		{"[Num, Str]", "[Num*]", false},
		{"[Num, Str]", "[(Num + Str)*]", true},
		{"[]", "[Num*]", true},
		{"[]", "[ε*]", true},
		{"[ε*]", "[]", true},
		{"[Num*]", "[]", false},
		{"[Num*]", "[Num*]", true},
		{"[Num*]", "[(Num + Str)*]", true},
		{"[(Num + Str)*]", "[Num*]", false},
		{"[Num*]", "[Num, Num]", false}, // repeated admits other lengths
		{"[Num]", "{a: Num}", false},
	}
	for _, c := range cases {
		tt, uu := MustParse(c.t), MustParse(c.u)
		if got := Subtype(tt, uu); got != c.want {
			t.Errorf("Subtype(%s, %s) = %v, want %v", c.t, c.u, got, c.want)
		}
	}
}

// randomMemberValue generates a value that belongs to t, for the
// soundness property below. Returns nil when t is ε (no member exists).
func randomMemberValue(r *typeRand, t Type) value.Value {
	switch tt := t.(type) {
	case EmptyType:
		return nil
	case Basic:
		switch tt {
		case Null:
			return value.Null{}
		case Bool:
			return value.Bool(r.intn(2) == 0)
		case Num:
			return value.Num(float64(r.intn(100)))
		default:
			return value.Str("s")
		}
	case *Record:
		var fs []value.Field
		for _, f := range tt.Fields() {
			if f.Optional && r.intn(2) == 0 {
				continue
			}
			v := randomMemberValue(r, f.Type)
			if v == nil {
				if f.Optional {
					continue
				}
				return nil // mandatory ε field: type is uninhabited
			}
			fs = append(fs, value.Field{Key: f.Key, Value: v})
		}
		return value.MustRecord(fs...)
	case *Tuple:
		elems := make(value.Array, tt.Len())
		for i, e := range tt.Elems() {
			v := randomMemberValue(r, e)
			if v == nil {
				return nil
			}
			elems[i] = v
		}
		return elems
	case *Repeated:
		n := r.intn(3)
		elems := make(value.Array, 0, n)
		for i := 0; i < n; i++ {
			v := randomMemberValue(r, tt.Elem())
			if v == nil {
				break // ε element: only the empty array inhabits
			}
			elems = append(elems, v)
		}
		return elems
	case *Union:
		alts := tt.Alts()
		start := r.intn(len(alts))
		for i := 0; i < len(alts); i++ {
			if v := randomMemberValue(r, alts[(start+i)%len(alts)]); v != nil {
				return v
			}
		}
		return nil
	default:
		return nil
	}
}

func TestPropertyGeneratedValuesAreMembers(t *testing.T) {
	f := func(seed uint64) bool {
		r := &typeRand{s: seed | 1}
		tt := randomType(r, 3)
		v := randomMemberValue(r, tt)
		if v == nil {
			return true // uninhabited type
		}
		return Member(v, tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertySubtypeImpliesMembership(t *testing.T) {
	// Soundness of the syntactic subtype check: if Subtype(t, u) then
	// every (generated) member of t is a member of u.
	f := func(seed uint64) bool {
		r := &typeRand{s: seed | 1}
		tt := randomType(r, 3)
		uu := randomType(r, 3)
		if !Subtype(tt, uu) {
			return true // nothing to check
		}
		for i := 0; i < 5; i++ {
			v := randomMemberValue(r, tt)
			if v == nil {
				continue
			}
			if !Member(v, uu) {
				t.Logf("t=%s u=%s v=%s", tt, uu, value.JSON(v))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSubtypeReflexiveOnRandomTypes(t *testing.T) {
	f := func(seed uint64) bool {
		r := &typeRand{s: seed | 1}
		tt := randomType(r, 4)
		return Subtype(tt, tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
