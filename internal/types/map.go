package types

// Map is an abstracted record type {*: T}: records with ARBITRARY keys
// whose values all belong to T. It is not part of the paper's core
// language (Figure 3); it exists for the key-abstraction extension that
// repairs the Wikidata pathology of Section 6.2 — datasets that encode
// identifiers as record keys defeat key-directed fusion, and the fix
// (which the authors themselves later pursued in their parametric
// schema-inference work) is to abstract such records into a map from
// any key to a fused value type.
//
// Map shares the record kind, so in normal types a union holds at most
// one of {record type, map type}, and fusion merges the two forms:
// fusing a map with a record folds the record's field types into the
// map's element type.
type Map struct {
	elem Type
}

// NewMap builds the abstracted record type {*: elem}.
func NewMap(elem Type) (*Map, error) {
	if elem == nil {
		return nil, errNilMapElem
	}
	return &Map{elem: elem}, nil
}

// MustMap is NewMap that panics on error.
func MustMap(elem Type) *Map {
	m, err := NewMap(elem)
	if err != nil {
		panic(err)
	}
	return m
}

var errNilMapElem = errorString("types: map element type is nil")

type errorString string

func (e errorString) Error() string { return string(e) }

// Elem returns the type of the map's values.
func (m *Map) Elem() Type { return m.elem }

// ordinal places maps between records and tuples in the total order.
func (*Map) ordinal() int { return 3 }

// Size counts one node for the record, one for the wildcard field, plus
// the element type — the same convention as a one-field record.
func (m *Map) Size() int { return 2 + m.elem.Size() }

// String renders the abstracted record type.
func (m *Map) String() string { return "{*: " + m.elem.String() + "}" }
