package types

import (
	"strings"
	"testing"
	"testing/quick"
)

// Shorthand constructors used across the package tests.
func rec(fields ...Field) *Record { return MustRecord(fields...) }
func fld(k string, t Type) Field  { return Field{Key: k, Type: t} }
func opt(k string, t Type) Field  { return Field{Key: k, Type: t, Optional: true} }
func tup(elems ...Type) *Tuple    { return MustTuple(elems...) }
func rep(t Type) *Repeated        { return MustRepeated(t) }
func uni(ts ...Type) Type         { return MustUnion(ts...) }

func TestKindOf(t *testing.T) {
	cases := []struct {
		t    Type
		want Kind
		ok   bool
	}{
		{Null, KindNull, true},
		{Bool, KindBool, true},
		{Num, KindNum, true},
		{Str, KindStr, true},
		{rec(), KindRecord, true},
		{tup(), KindArray, true},
		{tup(Num), KindArray, true},
		{rep(Num), KindArray, true},
		{Empty, 0, false},
		{uni(Num, Str), 0, false},
	}
	for _, c := range cases {
		got, ok := KindOf(c.t)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("KindOf(%s) = %v,%v want %v,%v", c.t, got, ok, c.want, c.ok)
		}
	}
}

func TestKindCodesMatchPaper(t *testing.T) {
	// kind(null)=0 kind(bool)=1 kind(num)=2 kind(str)=3 kind(rt)=4
	// kind(at)=kind(sat)=5.
	if KindNull != 0 || KindBool != 1 || KindNum != 2 || KindStr != 3 || KindRecord != 4 || KindArray != 5 {
		t.Fatal("kind codes diverge from the paper")
	}
	kt, _ := KindOf(tup(Num))
	kr, _ := KindOf(rep(Num))
	if kt != KindArray || kr != KindArray {
		t.Fatal("tuple and repeated array types must share the array kind")
	}
}

func TestNewRecordRejectsDuplicatesAndNil(t *testing.T) {
	if _, err := NewRecord(fld("a", Num), fld("a", Str)); err == nil {
		t.Error("duplicate keys accepted")
	}
	if _, err := NewRecord(Field{Key: "a"}); err == nil {
		t.Error("nil field type accepted")
	}
}

func TestRecordCanonicalOrder(t *testing.T) {
	a := rec(fld("b", Num), fld("a", Str))
	b := rec(fld("a", Str), fld("b", Num))
	if !Equal(a, b) {
		t.Error("records differing only in field order are not Equal")
	}
	if got := a.Keys(); got[0] != "a" || got[1] != "b" {
		t.Errorf("fields not sorted: %v", got)
	}
}

func TestRecordGet(t *testing.T) {
	r := rec(fld("x", Num), opt("y", Str))
	f, ok := r.Get("y")
	if !ok || !f.Optional || !Equal(f.Type, Str) {
		t.Errorf("Get(y) = %+v, %v", f, ok)
	}
	if _, ok := r.Get("z"); ok {
		t.Error("Get(z) should miss")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestNewTupleRejectsNil(t *testing.T) {
	if _, err := NewTuple(Num, nil); err == nil {
		t.Error("nil tuple element accepted")
	}
}

func TestNewRepeatedRejectsNil(t *testing.T) {
	if _, err := NewRepeated(nil); err == nil {
		t.Error("nil repeated element accepted")
	}
}

func TestNewUnionFlattensAndCanonicalizes(t *testing.T) {
	u := uni(Str, uni(Num, Bool), Num)
	un, ok := u.(*Union)
	if !ok {
		t.Fatalf("expected a union, got %T", u)
	}
	if un.Len() != 3 {
		t.Fatalf("want 3 deduplicated alternatives, got %d (%s)", un.Len(), u)
	}
	// Canonical order sorts basics by kind: Bool < Num < Str.
	if !Equal(un.Alts()[0], Bool) || !Equal(un.Alts()[1], Num) || !Equal(un.Alts()[2], Str) {
		t.Errorf("alternatives not canonical: %s", u)
	}
}

func TestNewUnionDropsEmptyAndCollapses(t *testing.T) {
	if got := uni(); !Equal(got, Empty) {
		t.Errorf("empty union = %s, want ε", got)
	}
	if got := uni(Num); !Equal(got, Num) {
		t.Errorf("singleton union = %s, want Num", got)
	}
	if got := uni(Empty, Num, Empty); !Equal(got, Num) {
		t.Errorf("union with ε = %s, want Num", got)
	}
	if got := uni(Num, Num, Num); !Equal(got, Num) {
		t.Errorf("duplicate union = %s, want Num", got)
	}
}

func TestNewUnionNilError(t *testing.T) {
	if _, err := NewUnion(Num, nil); err == nil {
		t.Error("nil union alternative accepted")
	}
}

func TestUnionOrderIrrelevant(t *testing.T) {
	a := uni(Str, rec(fld("a", Num)), Num)
	b := uni(Num, Str, rec(fld("a", Num)))
	if !Equal(a, b) {
		t.Errorf("union order matters: %s vs %s", a, b)
	}
}

func TestSize(t *testing.T) {
	cases := []struct {
		t    Type
		want int
	}{
		{Null, 1},
		{Empty, 1},
		{rec(), 1},
		{tup(), 1},
		{rec(fld("a", Num)), 3},                // record + field + Num
		{rec(fld("a", Num), opt("b", Str)), 5}, // record + 2*(field+basic)
		{tup(Num, Str), 3},                     // array + 2 basics
		{rep(Num), 2},                          // star + Num
		{uni(Num, Str), 3},                     // 1 '+' node + 2 basics
		{uni(Num, Str, Bool), 5},               // 2 '+' nodes + 3 basics
		{rec(fld("a", uni(Num, rep(Str)))), 6}, // rec + field + '+' + Num + star + Str
	}
	for _, c := range cases {
		if got := c.t.Size(); got != c.want {
			t.Errorf("Size(%s) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestSizeNested(t *testing.T) {
	// {a: (Num + [Str*])} = record(1) + field(1) + union(+:1) + Num(1) + star(1) + Str(1) = 6.
	tt := rec(fld("a", uni(Num, rep(Str))))
	if got := tt.Size(); got != 6 {
		t.Errorf("Size = %d, want 6", got)
	}
}

func TestCompareTotalOrder(t *testing.T) {
	seq := []Type{
		Empty,
		Null, Bool, Num, Str,
		rec(), rec(fld("a", Num)), rec(fld("a", Num), fld("b", Num)), rec(fld("b", Num)),
		tup(), tup(Num), tup(Num, Num), tup(Str),
		rep(Num), rep(Str),
		uni(Null, Num), uni(Num, Str), uni(Num, Str, rec(fld("a", Num))),
	}
	for i := range seq {
		for j := range seq {
			got := Compare(seq[i], seq[j])
			switch {
			case i < j && got >= 0:
				t.Errorf("Compare(%s, %s) = %d, want < 0", seq[i], seq[j], got)
			case i > j && got <= 0:
				t.Errorf("Compare(%s, %s) = %d, want > 0", seq[i], seq[j], got)
			case i == j && got != 0:
				t.Errorf("Compare(%s, itself) = %d", seq[i], got)
			}
		}
	}
}

func TestCompareOptionalityOrdersFields(t *testing.T) {
	a := rec(fld("a", Num))
	b := rec(opt("a", Num))
	if Compare(a, b) >= 0 || Compare(b, a) <= 0 {
		t.Error("mandatory field should order before optional")
	}
	if Equal(a, b) {
		t.Error("optionality must distinguish records")
	}
}

func TestAddends(t *testing.T) {
	if got := Addends(Empty); len(got) != 0 {
		t.Errorf("Addends(ε) = %v", got)
	}
	if got := Addends(Num); len(got) != 1 || !Equal(got[0], Num) {
		t.Errorf("Addends(Num) = %v", got)
	}
	u := uni(Num, Str, rec())
	if got := Addends(u); len(got) != 3 {
		t.Errorf("Addends(union) = %v", got)
	}
}

func TestIsNormal(t *testing.T) {
	cases := []struct {
		t    Type
		want bool
	}{
		{Num, true},
		{Empty, true},
		{uni(Num, Str), true},
		{uni(Num, Str, rec(fld("a", Num)), rep(Str)), true},
		// Two array-kind alternatives: not normal.
		{&Union{alts: []Type{tup(Num), rep(Str)}}, false},
		// Two records: not normal.
		{&Union{alts: []Type{rec(fld("a", Num)), rec(fld("b", Num))}}, false},
		// Non-normal nested inside a record field.
		{rec(fld("a", &Union{alts: []Type{rec(), rec(fld("x", Num))}})), false},
		{rec(fld("a", uni(Num, Str))), true},
		{tup(&Union{alts: []Type{tup(), rep(Num)}}), false},
		{rep(&Union{alts: []Type{rec(), rec(fld("x", Num))}}), false},
	}
	for _, c := range cases {
		if got := IsNormal(c.t); got != c.want {
			t.Errorf("IsNormal(%s) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestDepth(t *testing.T) {
	cases := []struct {
		t    Type
		want int
	}{
		{Num, 1},
		{rec(), 1},
		{rec(fld("a", Num)), 2},
		{rec(fld("a", rec(fld("b", Num)))), 3},
		{rep(rep(Num)), 3},
		{uni(Num, rec(fld("a", Num))), 3},
		{tup(Num, tup(Num)), 2 + 1 - 1}, // [Num, [Num]] depth 3? see below
	}
	// Fix the last case explicitly: [Num, [Num]] = 1 + max(1, 1+1) = 3.
	cases[len(cases)-1].want = 3
	for _, c := range cases {
		if got := Depth(c.t); got != c.want {
			t.Errorf("Depth(%s) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestWalk(t *testing.T) {
	tt := rec(fld("a", uni(Num, rep(Str))), fld("b", tup(Bool)))
	var visited []string
	Walk(tt, func(t Type) bool {
		visited = append(visited, t.String())
		return true
	})
	// record, union, Num, [Str*], Str, tuple, Bool = 7 visits.
	if len(visited) != 7 {
		t.Errorf("Walk visited %d nodes (%v), want 7", len(visited), visited)
	}
	// Pruned walk: don't descend into the union.
	count := 0
	Walk(tt, func(t Type) bool {
		count++
		_, isUnion := t.(*Union)
		return !isUnion
	})
	if count != 4 { // record, union, tuple, Bool
		t.Errorf("pruned Walk visited %d nodes, want 4", count)
	}
}

// --- random type generator shared by property tests in this package ---

type typeRand struct{ s uint64 }

func (r *typeRand) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *typeRand) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *typeRand) key() string {
	keys := []string{"a", "b", "c", "id", "name", "x-y", "with space", "0digit", "ε", ""}
	return keys[r.intn(len(keys))]
}

// randomType builds a bounded random canonical type. It may be non-normal
// (unions constructed from arbitrary alternatives), which is fine for
// printer/parser/order tests; fusion property tests build their types via
// inference, which always yields normal types.
func randomType(r *typeRand, depth int) Type {
	max := 8
	if depth <= 0 {
		max = 4
	}
	switch r.intn(max) {
	case 0:
		return Null
	case 1:
		return Bool
	case 2:
		return Num
	case 3:
		return Str
	case 4:
		n := r.intn(4)
		var fs []Field
		seen := map[string]bool{}
		for i := 0; i < n; i++ {
			k := r.key()
			if seen[k] {
				continue
			}
			seen[k] = true
			fs = append(fs, Field{Key: k, Type: randomType(r, depth-1), Optional: r.intn(2) == 0})
		}
		return rec(fs...)
	case 5:
		n := r.intn(3)
		es := make([]Type, n)
		for i := range es {
			es[i] = randomType(r, depth-1)
		}
		return tup(es...)
	case 6:
		return rep(randomType(r, depth-1))
	default:
		n := 2 + r.intn(2)
		as := make([]Type, n)
		for i := range as {
			as[i] = randomType(r, depth-1)
		}
		return uni(as...)
	}
}

func TestPropertyCompareConsistency(t *testing.T) {
	f := func(seed1, seed2 uint64) bool {
		r1 := &typeRand{s: seed1 | 1}
		r2 := &typeRand{s: seed2 | 1}
		a := randomType(r1, 3)
		b := randomType(r2, 3)
		if Equal(a, b) != (Compare(a, b) == 0) {
			return false
		}
		return sign(Compare(a, b)) == -sign(Compare(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertySizePositiveAndDepthBounded(t *testing.T) {
	f := func(seed uint64) bool {
		r := &typeRand{s: seed | 1}
		tt := randomType(r, 4)
		return tt.Size() >= 1 && Depth(tt) >= 1 && Depth(tt) <= tt.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func sign(n int) int {
	switch {
	case n < 0:
		return -1
	case n > 0:
		return 1
	default:
		return 0
	}
}

func TestStringContains(t *testing.T) {
	tt := rec(fld("a", Num), opt("b", uni(Str, Null)))
	s := tt.String()
	for _, want := range []string{"a: Num", "b: (Null + Str)?"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	f := func(seed1, seed2 uint64) bool {
		r1 := &typeRand{s: seed1 | 1}
		r2 := &typeRand{s: seed2 | 1}
		a := randomType(r1, 4)
		b := randomType(r2, 4)
		if Equal(a, b) && Hash(a) != Hash(b) {
			return false
		}
		// Hash must be deterministic.
		return Hash(a) == Hash(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHashDistinguishes(t *testing.T) {
	// Types that are nearly identical must hash apart; collisions are
	// possible in principle but these structured cases must not collide.
	cases := []Type{
		Null, Bool, Num, Str, Empty,
		rec(), rec(fld("a", Num)), rec(opt("a", Num)), rec(fld("b", Num)),
		rec(fld("a", Str)),
		tup(), tup(Num), tup(Num, Num),
		rep(Num), rep(Str), MustMap(Num), MustMap(Str),
		uni(Num, Str), uni(Num, Bool),
		rec(fld("ab", Num), fld("c", Num)), rec(fld("a", Num), fld("bc", Num)),
	}
	seen := map[uint64]Type{}
	for _, tt := range cases {
		h := Hash(tt)
		if prev, ok := seen[h]; ok {
			t.Errorf("collision: %s and %s both hash to %d", prev, tt, h)
		}
		seen[h] = tt
	}
}
