package types

import (
	"fmt"
	"sort"
	"strings"
)

// Variants is a tagged-union record type: a discriminated set of record
// types kept separate by the value of a discriminator. It is not part
// of the paper's core language (Figure 3); it exists for the
// tagged-union fusion policy (docs/UNIONS.md), which repairs the
// precision loss the paper's record-fusion rule suffers on
// heterogeneous streams — fusing Twitter's tweets and deletes into one
// record makes every field of both optional, while a tagged union keeps
// one precise record per variant.
//
// A Variants value is in one of three states:
//
//   - keyed: records are discriminated by the string value of the field
//     named Key (e.g. {type: "push", ...} vs {type: "fork", ...}). Each
//     case maps one observed tag value to the record type of the
//     records carrying it.
//   - wrapper: records are discriminated by their single field's key
//     (Twitter's {delete: {...}} vs {scrub_geo: {...}}); Key is empty
//     and each case's tag is that field key. The case type is the whole
//     single-field record.
//   - collapsed: the discriminator hypothesis failed during fusion
//     (mode conflict or more tags than the policy's cap). The state is
//     absorbing — any further fusion stays collapsed — and Other holds
//     the plain record fusion of everything seen, exactly what the
//     paper's algorithm would have produced. fusion.Finalize lowers it
//     to that record, so high-cardinality near-misses degrade
//     gracefully to the paper's result.
//
// In the keyed and wrapper states, Other (possibly nil) collects the
// record types of values that carry no recognized discriminator (the
// wide tweet records next to Twitter's wrapper deletes).
//
// Variants shares the record kind with Record and Map, so normal types
// keep at most one of the three per union and fusion merges them:
// a plain record folds into Other, and a map absorbs the whole union
// (key abstraction wins over tagging).
type Variants struct {
	key       string
	wrapper   bool
	collapsed bool
	cases     []Variant
	other     *Record
}

// Variant is one case of a tagged union: the discriminator value and
// the record type of the values carrying it.
type Variant struct {
	Tag  string
	Type *Record
}

// NewVariants builds a keyed (key != "") or wrapper (key == "",
// wrapper true) tagged union. Cases are sorted by tag; duplicate tags,
// nil case types and an empty case list are rejected, as is setting
// both key and wrapper. other may be nil.
func NewVariants(key string, wrapper bool, cases []Variant, other *Record) (*Variants, error) {
	if (key != "") == wrapper {
		return nil, fmt.Errorf("types: variants need exactly one of a discriminator key or wrapper mode")
	}
	if len(cases) == 0 {
		return nil, fmt.Errorf("types: variants need at least one case")
	}
	cs := make([]Variant, len(cases))
	copy(cs, cases)
	sort.SliceStable(cs, func(i, j int) bool { return cs[i].Tag < cs[j].Tag })
	for i, c := range cs {
		if c.Type == nil {
			return nil, fmt.Errorf("types: variant %q has nil type", c.Tag)
		}
		if i > 0 && cs[i-1].Tag == c.Tag {
			return nil, fmt.Errorf("types: duplicate variant tag %q", c.Tag)
		}
	}
	return &Variants{key: key, wrapper: wrapper, cases: cs, other: other}, nil
}

// MustVariants is NewVariants that panics on error.
func MustVariants(key string, wrapper bool, cases []Variant, other *Record) *Variants {
	v, err := NewVariants(key, wrapper, cases, other)
	if err != nil {
		panic(err)
	}
	return v
}

// NewCollapsedVariants builds the absorbing collapsed state around the
// plain record fusion of everything the union has seen.
func NewCollapsedVariants(other *Record) (*Variants, error) {
	if other == nil {
		return nil, fmt.Errorf("types: collapsed variants need a record")
	}
	return &Variants{collapsed: true, other: other}, nil
}

// MustCollapsedVariants is NewCollapsedVariants that panics on error.
func MustCollapsedVariants(other *Record) *Variants {
	v, err := NewCollapsedVariants(other)
	if err != nil {
		panic(err)
	}
	return v
}

// Key returns the discriminator field key ("" in wrapper and collapsed
// states).
func (v *Variants) Key() string { return v.key }

// Wrapper reports whether the union discriminates by the single field
// key of wrapper records.
func (v *Variants) Wrapper() bool { return v.wrapper }

// Collapsed reports whether the discriminator hypothesis failed and the
// union degraded to the absorbing collapsed state.
func (v *Variants) Collapsed() bool { return v.collapsed }

// Cases returns the variants in tag order (empty when collapsed).
// Callers must not modify the returned slice.
func (v *Variants) Cases() []Variant { return v.cases }

// Len reports the number of cases.
func (v *Variants) Len() int { return len(v.cases) }

// Other returns the record type of values carrying no recognized
// discriminator, or nil. In the collapsed state it holds the plain
// record fusion of everything.
func (v *Variants) Other() *Record { return v.other }

// Get returns the case with the given tag and true, or a zero Variant
// and false.
func (v *Variants) Get(tag string) (Variant, bool) {
	i := sort.Search(len(v.cases), func(i int) bool { return v.cases[i].Tag >= tag })
	if i < len(v.cases) && v.cases[i].Tag == tag {
		return v.cases[i], true
	}
	return Variant{}, false
}

// ordinal places tagged unions between maps and tuples in the total
// order.
func (*Variants) ordinal() int { return 4 }

// Size counts one node for the union, one per case tag plus the case
// type, and one plus the record for Other — the same convention as
// record fields, so the succinctness comparison against the paper's
// fused record is honest.
func (v *Variants) Size() int {
	n := 1
	for _, c := range v.cases {
		n += 1 + c.Type.Size()
	}
	if v.other != nil {
		n += 1 + v.other.Size()
	}
	return n
}

// String renders the tagged union; see print.go for the syntax.
func (v *Variants) String() string {
	var sb strings.Builder
	v.appendTo(&sb)
	return sb.String()
}

// compareVariants is the *Variants arm of Compare.
func compareVariants(a, b *Variants) int {
	if a.collapsed != b.collapsed {
		if a.collapsed {
			return 1
		}
		return -1
	}
	if a.wrapper != b.wrapper {
		if a.wrapper {
			return 1
		}
		return -1
	}
	if c := strings.Compare(a.key, b.key); c != 0 {
		return c
	}
	for i := 0; i < len(a.cases) && i < len(b.cases); i++ {
		if c := strings.Compare(a.cases[i].Tag, b.cases[i].Tag); c != 0 {
			return c
		}
		if c := Compare(a.cases[i].Type, b.cases[i].Type); c != 0 {
			return c
		}
	}
	if c := len(a.cases) - len(b.cases); c != 0 {
		return c
	}
	switch {
	case a.other == nil && b.other == nil:
		return 0
	case a.other == nil:
		return -1
	case b.other == nil:
		return 1
	default:
		return Compare(a.other, b.other)
	}
}
