package types

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func TestWitnessBasics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, tt := range []Type{Null, Bool, Num, Str} {
		v, ok := Witness(tt, r)
		if !ok || !Member(v, tt) {
			t.Errorf("Witness(%s) = %v, %v", tt, v, ok)
		}
	}
	if _, ok := Witness(Empty, r); ok {
		t.Error("ε should have no witness")
	}
}

func TestWitnessUninhabitedRecord(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	// A mandatory ε field makes the record uninhabited.
	rec := MustRecord(Field{Key: "dead", Type: Empty})
	if _, ok := Witness(rec, r); ok {
		t.Error("record with mandatory ε field should have no witness")
	}
	// An optional ε field does not.
	optRec := MustRecord(Field{Key: "dead", Type: Empty, Optional: true}, Field{Key: "a", Type: Num})
	v, ok := Witness(optRec, r)
	if !ok || !Member(v, optRec) {
		t.Errorf("Witness = %v, %v", v, ok)
	}
	if v.(*value.Record).Has("dead") {
		t.Error("witness includes the uninhabited optional field")
	}
}

func TestWitnessEmptyArrayType(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	v, ok := Witness(MustRepeated(Empty), r)
	if !ok {
		t.Fatal("no witness for [ε*]")
	}
	if arr := v.(value.Array); len(arr) != 0 {
		t.Errorf("witness of [ε*] = %s, want []", value.JSON(v))
	}
}

func TestWitnessCoversUnionBranches(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	u := MustUnion(Num, Str, MustRecord(Field{Key: "a", Type: Bool}))
	seen := map[value.Kind]bool{}
	for i := 0; i < 200; i++ {
		v, ok := Witness(u, r)
		if !ok || !Member(v, u) {
			t.Fatalf("bad witness %v", v)
		}
		seen[v.Kind()] = true
	}
	if len(seen) != 3 {
		t.Errorf("only kinds %v produced", seen)
	}
}

func TestPropertyWitnessIsMember(t *testing.T) {
	f := func(seed uint64) bool {
		tr := &typeRand{s: seed | 1}
		tt := randomType(tr, 4)
		r := rand.New(rand.NewSource(int64(seed)))
		for i := 0; i < 5; i++ {
			v, ok := Witness(tt, r)
			if !ok {
				return true // uninhabited: nothing to check
			}
			if !Member(v, tt) {
				t.Logf("type %s witness %s", tt, value.JSON(v))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
