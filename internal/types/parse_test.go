package types

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestStringRendering(t *testing.T) {
	cases := []struct {
		t    Type
		want string
	}{
		{Null, "Null"},
		{Bool, "Bool"},
		{Num, "Num"},
		{Str, "Str"},
		{Empty, "ε"},
		{rec(), "{}"},
		{tup(), "[]"},
		{rec(fld("a", Num)), "{a: Num}"},
		{rec(fld("a", Num), opt("b", Str)), "{a: Num, b: Str?}"},
		{rec(opt("b", uni(Num, Str))), "{b: (Num + Str)?}"},
		{rec(fld("b", uni(Num, Str))), "{b: Num + Str}"},
		{tup(Num, Str), "[Num, Str]"},
		{rep(Num), "[Num*]"},
		{rep(uni(Num, Str)), "[(Num + Str)*]"},
		{rep(Empty), "[ε*]"},
		{uni(Num, Str), "Num + Str"},
		{uni(Str, Num), "Num + Str"}, // canonical order
		{rec(fld("with space", Num)), `{"with space": Num}`},
		{rec(fld("0digit", Num)), `{"0digit": Num}`},
		{rec(fld("", Num)), `{"": Num}`},
		{rec(fld("x-y", Num)), "{x-y: Num}"},
		{rep(rep(Num)), "[[Num*]*]"},
		{tup(tup(Num), rep(Str)), "[[Num], [Str*]]"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestParseBasics(t *testing.T) {
	cases := []struct {
		src  string
		want Type
	}{
		{"Null", Null},
		{"Bool", Bool},
		{"Num", Num},
		{"Str", Str},
		{"ε", Empty},
		{"Empty", Empty},
		{" Num ", Num},
		{"(Num)", Num},
		{"((Num))", Num},
		{"{}", rec()},
		{"[]", tup()},
		{"{a: Num}", rec(fld("a", Num))},
		{"{a:Num,b:Str?}", rec(fld("a", Num), opt("b", Str))},
		{"{b: (Num + Str)?}", rec(opt("b", uni(Num, Str)))},
		{"{b: Num + Str?}", rec(opt("b", uni(Num, Str)))}, // '?' binds to the field
		{"[Num, Str]", tup(Num, Str)},
		{"[Num*]", rep(Num)},
		{"[(Num + Str)*]", rep(uni(Num, Str))},
		{"[Num + Str*]", rep(uni(Num, Str))}, // star after a full union
		{"[ε*]", rep(Empty)},
		{"Num + Str", uni(Num, Str)},
		{"Str + Num", uni(Num, Str)},
		{`{"with space": Num}`, rec(fld("with space", Num))},
		{`{"esc\"q": Num}`, rec(fld(`esc"q`, Num))},
		{`{"A": Num}`, rec(fld("A", Num))},
		{"{x-y: Num}", rec(fld("x-y", Num))},
		{"[[Num*]*]", rep(rep(Num))},
		{"{a: {b: [Bool]}}", rec(fld("a", rec(fld("b", tup(Bool)))))},
	}
	for _, c := range cases {
		got, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if !Equal(got, c.want) {
			t.Errorf("Parse(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"Nul",
		"Foo",
		"{",
		"{a}",
		"{a:}",
		"{a: Num",
		"{a: Num; b: Str}",
		"[Num",
		"[Num;]",
		"[*]",
		"(Num",
		"Num +",
		"Num Str",
		"{1digit: Num}",
		`{"unterminated: Num}`,
		`{"bad\q": Num}`,
		`{"short\u00": Num}`,
		"{a: Num, a: Str}", // duplicate key rejected by NewRecord
		"{: Num}",
	}
	for _, src := range bad {
		if got, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded with %s, want error", src, got)
		}
	}
}

func TestParseErrorMentionsOffset(t *testing.T) {
	_, err := Parse("{a: Wrong}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Errorf("error %q lacks offset info", err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("Bogus")
}

func TestRoundTripExamplesFromPaper(t *testing.T) {
	// Types that appear in Section 2 of the paper.
	srcs := []string{
		"{A: Str?, B: Num + Bool, C: Str?}",
		"{A: (Null + Str)?, B: Bool + Num, C: Str?}",
		"[(Str + {E: Str, F: Num})*]",
		"{l: Bool + Str + {A: Num + Str}, B: Num?}",
	}
	for _, src := range srcs {
		tt, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		back, err := Parse(tt.String())
		if err != nil {
			t.Errorf("re-Parse(%q): %v", tt.String(), err)
			continue
		}
		if !Equal(tt, back) {
			t.Errorf("round trip changed %q -> %q", src, back)
		}
	}
}

func TestPropertyPrintParseRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := &typeRand{s: seed | 1}
		tt := randomType(r, 4)
		back, err := Parse(tt.String())
		if err != nil {
			t.Logf("Parse(%q): %v", tt.String(), err)
			return false
		}
		if !Equal(tt, back) {
			t.Logf("round trip %q -> %q", tt.String(), back.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyIndentParsesBack(t *testing.T) {
	f := func(seed uint64) bool {
		r := &typeRand{s: seed | 1}
		tt := randomType(r, 4)
		back, err := Parse(Indent(tt))
		return err == nil && Equal(tt, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIndentShape(t *testing.T) {
	tt := rec(fld("a", rec(fld("b", Num))), opt("c", uni(Str, Null)))
	got := Indent(tt)
	want := "{\n  a: {\n    b: Num\n  },\n  c: (Null + Str)?\n}"
	if got != want {
		t.Errorf("Indent:\n%s\nwant:\n%s", got, want)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	cases := []Type{
		Null, Bool, Num, Str, Empty,
		rec(), tup(), rep(Empty),
		rec(fld("a", Num), opt("b", uni(Str, Null))),
		tup(Num, rec(fld("x", rep(Bool)))),
		uni(Num, Str, rec(fld("a", Num)), rep(Str)),
	}
	for _, tt := range cases {
		data, err := MarshalJSON(tt)
		if err != nil {
			t.Errorf("MarshalJSON(%s): %v", tt, err)
			continue
		}
		back, err := UnmarshalJSON(data)
		if err != nil {
			t.Errorf("UnmarshalJSON(%s): %v", data, err)
			continue
		}
		if !Equal(tt, back) {
			t.Errorf("codec round trip %s -> %s", tt, back)
		}
	}
}

func TestCodecErrors(t *testing.T) {
	if _, err := MarshalJSON(nil); err == nil {
		t.Error("MarshalJSON(nil) should fail")
	}
	bad := []string{
		``,
		`{"k":"bogus"}`,
		`{"k":"union","alts":[{"k":"num"}]}`,
		`{"k":"rep"}`,
		`{"k":"record","fields":[{"key":"a"}]}`,
	}
	for _, src := range bad {
		if _, err := UnmarshalJSON([]byte(src)); err == nil {
			t.Errorf("UnmarshalJSON(%q) should fail", src)
		}
	}
}

func TestPropertyCodecRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := &typeRand{s: seed | 1}
		tt := randomType(r, 4)
		data, err := MarshalJSON(tt)
		if err != nil {
			return false
		}
		back, err := UnmarshalJSON(data)
		return err == nil && Equal(tt, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
