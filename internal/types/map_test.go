package types

import (
	"math/rand"
	"testing"

	"repro/internal/value"
)

func mp(elem Type) *Map { return MustMap(elem) }

func TestMapConstructor(t *testing.T) {
	if _, err := NewMap(nil); err == nil {
		t.Error("NewMap(nil) accepted")
	}
	m := mp(Num)
	if !Equal(m.Elem(), Num) {
		t.Errorf("Elem = %s", m.Elem())
	}
	k, ok := KindOf(m)
	if !ok || k != KindRecord {
		t.Errorf("KindOf = %v, %v (maps share the record kind)", k, ok)
	}
}

func TestMapPrintParseRoundTrip(t *testing.T) {
	cases := []string{
		"{*: Num}",
		"{*: Num + Str}",
		"{*: {language: Str, value: Str}}",
		"{*: [{a: Num?}*]}",
		"{a: {*: Num}, b: Str}",
		"{*: {*: Bool}}",
		"Num + {*: Str}",
	}
	for _, src := range cases {
		tt, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if got := tt.String(); got != src {
			t.Errorf("String = %q, want %q", got, src)
		}
		back, err := Parse(Indent(tt))
		if err != nil || !Equal(tt, back) {
			t.Errorf("Indent round trip failed for %q: %v", src, err)
		}
	}
}

func TestMapParseErrors(t *testing.T) {
	for _, src := range []string{"{*}", "{*: }", "{*: Num", "{* Num}", "{*: Num, a: Str}"} {
		if got, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted as %s", src, got)
		}
	}
}

func TestMapSizeAndDepth(t *testing.T) {
	m := mp(MustParse("{a: Num}"))
	if m.Size() != 2+3 {
		t.Errorf("Size = %d", m.Size())
	}
	if Depth(m) != 3 {
		t.Errorf("Depth = %d", Depth(m))
	}
}

func TestMapCompare(t *testing.T) {
	seq := []Type{
		rec(fld("a", Num)), // records before maps
		mp(Num), mp(Str),
		tup(Num), // tuples after maps
	}
	for i := range seq {
		for j := range seq {
			got := Compare(seq[i], seq[j])
			if (i < j && got >= 0) || (i > j && got <= 0) || (i == j && got != 0) {
				t.Errorf("Compare(%s, %s) = %d", seq[i], seq[j], got)
			}
		}
	}
}

func TestMapMembership(t *testing.T) {
	m := mp(MustParse("Num + Str"))
	yes := []value.Value{
		value.MustRecord(),
		value.Obj("anything", value.Num(1)),
		value.Obj("x", value.Num(1), "y", value.Str("s"), "z", value.Num(2)),
	}
	no := []value.Value{
		value.Obj("x", value.Bool(true)),
		value.Obj("ok", value.Num(1), "bad", value.Null{}),
		value.Num(3),
		value.Arr(value.Num(1)),
	}
	for _, v := range yes {
		if !Member(v, m) {
			t.Errorf("%s should belong to %s", value.JSON(v), m)
		}
	}
	for _, v := range no {
		if Member(v, m) {
			t.Errorf("%s should NOT belong to %s", value.JSON(v), m)
		}
	}
}

func TestMapSubtype(t *testing.T) {
	cases := []struct {
		t, u string
		want bool
	}{
		{"{a: Num, b: Num}", "{*: Num}", true},
		{"{a: Num, b: Str}", "{*: Num}", false},
		{"{a: Num, b: Str}", "{*: Num + Str}", true},
		{"{a: Num?}", "{*: Num}", true},
		{"{}", "{*: Num}", true},
		{"{*: Num}", "{*: Num}", true},
		{"{*: Num}", "{*: Num + Str}", true},
		{"{*: Num + Str}", "{*: Num}", false},
		{"{*: Num}", "{a: Num}", false},
		{"{*: Num}", "[Num*]", false},
		{"ε", "{*: Num}", true},
		{"{*: Num}", "{*: Num} + Str", true},
	}
	for _, c := range cases {
		if got := Subtype(MustParse(c.t), MustParse(c.u)); got != c.want {
			t.Errorf("Subtype(%s, %s) = %v, want %v", c.t, c.u, got, c.want)
		}
	}
}

func TestMapCodecRoundTrip(t *testing.T) {
	tt := MustParse("{claims: {*: [{rank: Str}*]}, id: Str}")
	data, err := MarshalJSON(tt)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalJSON(data)
	if err != nil || !Equal(tt, back) {
		t.Fatalf("codec round trip: %v (%s)", err, back)
	}
}

func TestMapWitness(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m := mp(MustParse("{language: Str}"))
	for i := 0; i < 20; i++ {
		v, ok := Witness(m, r)
		if !ok || !Member(v, m) {
			t.Fatalf("witness %v not a member", v)
		}
	}
	// Uninhabited element: only the empty record.
	v, ok := Witness(mp(Empty), r)
	if !ok {
		t.Fatal("no witness for {*: ε}")
	}
	if v.(*value.Record).Len() != 0 {
		t.Errorf("witness of {*: ε} = %s", value.JSON(v))
	}
}

func TestMapIsNormalAndWalk(t *testing.T) {
	tt := MustParse("{*: Num + [Str*]}")
	if !IsNormal(tt) {
		t.Error("map type should be normal")
	}
	count := 0
	Walk(tt, func(Type) bool { count++; return true })
	if count != 5 { // map, union, Num, [Str*], Str
		t.Errorf("Walk visited %d nodes", count)
	}
	// A non-normal elem propagates.
	bad := mp(&Union{alts: []Type{rec(), rec(fld("a", Num))}})
	if IsNormal(bad) {
		t.Error("map with non-normal element reported normal")
	}
}
