package types

import "fmt"

// Subtype is a sound, syntax-directed approximation of the semantic
// sub-typing relation of Definition 4.1: Subtype(t, u) == true implies
// ⟦t⟧ ⊆ ⟦u⟧. The converse does not hold in general (semantic sub-typing
// of union types is not syntax-directed), but the check is complete
// enough to verify the fusion correctness theorem (Theorem 5.2) on the
// normal types our algorithms produce, which the property tests exploit.
//
// The rules:
//
//   - ε <: U for every U;
//   - {..} <: {*: T} if every field type fits T; {*: T} <: {*: U} if
//     T <: U;
//   - B <: B for basic types;
//   - T <: U1 + ... + Un if T <: Ui for some i (T non-union);
//   - T1 + ... + Tn <: U if Ti <: U for every i;
//   - {..} <: {..} if every field of the left type appears in the right
//     with a supertype content, left-optional fields are right-optional,
//     and right-only fields are optional;
//   - [T1, ..., Tn] <: [U1, ..., Un] positionally;
//   - [T1, ..., Tn] <: [U*] if every Ti <: U;
//   - [T*] <: [U*] if T <: U (or T = ε);
//   - [T*] <: [] only when T = ε (both denote exactly the empty array),
//     and [] <: [U*] always.
func Subtype(t, u Type) bool {
	// ε is a subtype of everything.
	if _, ok := t.(EmptyType); ok {
		return true
	}
	// A union on the left must be covered alternative by alternative.
	if ut, ok := t.(*Union); ok {
		for _, a := range ut.alts {
			if !Subtype(a, u) {
				return false
			}
		}
		return true
	}
	// A union on the right succeeds if any alternative covers t. A
	// tagged union on the left gets a second chance: its components may
	// be covered by different alternatives.
	if uu, ok := u.(*Union); ok {
		for _, a := range uu.alts {
			if Subtype(t, a) {
				return true
			}
		}
		if vt, ok := t.(*Variants); ok {
			return variantsComponentsSubtype(vt, u)
		}
		return false
	}
	// A tagged union on the left is covered when every component is:
	// ⟦V⟧ is contained in the union of its case types and Other, so
	// component-wise coverage is sound for any right side (the
	// right-side Variants rule refines the same-discriminator case).
	if vt, ok := t.(*Variants); ok {
		if vu, ok := u.(*Variants); ok {
			return variantsSubtype(vt, vu)
		}
		return variantsComponentsSubtype(vt, u)
	}
	// A tagged union on the right admits any value its catch-all Other
	// branch admits (Member falls back to Other when routing misses or
	// the routed case rejects), so covering t with Other is sound.
	if vu, ok := u.(*Variants); ok {
		return vu.Other() != nil && Subtype(t, vu.Other())
	}
	switch tt := t.(type) {
	case Basic:
		ub, ok := u.(Basic)
		return ok && tt == ub
	case *Record:
		switch uu := u.(type) {
		case *Record:
			return recordSubtype(tt, uu)
		case *Map:
			// Every field's content must fit the map's element type;
			// keys are unconstrained.
			for _, f := range tt.Fields() {
				if !Subtype(f.Type, uu.Elem()) {
					return false
				}
			}
			return true
		default:
			return false
		}
	case *Map:
		uu, ok := u.(*Map)
		if !ok {
			// {*: T} admits records with arbitrary keys; no concrete
			// record type covers that (and tuples/basics certainly do
			// not), except vacuously when T is uninhabited — which the
			// syntactic check conservatively ignores.
			return false
		}
		return Subtype(tt.Elem(), uu.Elem())
	case *Tuple:
		switch uu := u.(type) {
		case *Tuple:
			if len(tt.elems) != len(uu.elems) {
				return false
			}
			for i := range tt.elems {
				if !Subtype(tt.elems[i], uu.elems[i]) {
					return false
				}
			}
			return true
		case *Repeated:
			for _, e := range tt.elems {
				if !Subtype(e, uu.elem) {
					return false
				}
			}
			return true
		default:
			return false
		}
	case *Repeated:
		switch uu := u.(type) {
		case *Repeated:
			return Subtype(tt.elem, uu.elem)
		case *Tuple:
			// [T*] contains the empty array and, unless T = ε, also
			// arbitrarily long arrays; only [ε*] <: [].
			if _, isEmpty := tt.elem.(EmptyType); isEmpty {
				return len(uu.elems) == 0
			}
			return false
		default:
			return false
		}
	default:
		panic(fmt.Sprintf("types: unknown type %T", t))
	}
}

// Equivalent reports whether two types denote the same set of values,
// as far as the sound subtype check can tell: mutual sub-typing. It is
// coarser than Equal — e.g. [] and [ε*] are Equivalent but not Equal —
// and like Subtype it can answer false for exotic semantically-equal
// pairs, never true for unequal ones.
func Equivalent(t, u Type) bool { return Subtype(t, u) && Subtype(u, t) }

// variantsComponentsSubtype checks component-wise coverage: ⟦V⟧ is
// contained in the union of its case types and Other, so V <: u holds
// whenever every component does. Sound for any right side.
func variantsComponentsSubtype(t *Variants, u Type) bool {
	for _, c := range t.Cases() {
		if !Subtype(c.Type, u) {
			return false
		}
	}
	return t.Other() == nil || Subtype(t.Other(), u)
}

// variantsSubtype covers one tagged union with another. With matching
// modes and keys, every left case needs a same-tag right case covering
// it (or must fit the right catch-all), and the Other branches must
// nest. Mismatched modes fall back to component-wise coverage, and
// collapsed states compare by their records.
func variantsSubtype(t, u *Variants) bool {
	if t.Collapsed() {
		return Subtype(t.Other(), Type(u))
	}
	if u.Collapsed() {
		return Subtype(flattenLeft(t), u.Other())
	}
	if t.Wrapper() != u.Wrapper() || t.Key() != u.Key() {
		return variantsComponentsSubtype(t, u)
	}
	for _, c := range t.Cases() {
		if uc, ok := u.Get(c.Tag); ok && Subtype(c.Type, uc.Type) {
			continue
		}
		if u.Other() == nil || !Subtype(c.Type, u.Other()) {
			return false
		}
	}
	if t.Other() != nil {
		return u.Other() != nil && Subtype(t.Other(), u.Other())
	}
	return true
}

// flattenLeft over-approximates a tagged union's value set for the
// left-of-collapsed comparison: since every component must fit the one
// record on the right, checking each individually is equivalent; return
// a union of the components so the standard left-union rule does it.
func flattenLeft(t *Variants) Type {
	parts := make([]Type, 0, t.Len()+1)
	for _, c := range t.Cases() {
		parts = append(parts, c.Type)
	}
	if t.Other() != nil {
		parts = append(parts, t.Other())
	}
	return MustUnion(parts...)
}

// recordSubtype implements the record rule documented on Subtype. Both
// field slices are sorted by key; merge them.
func recordSubtype(t, u *Record) bool {
	tf, uf := t.fields, u.fields
	i, j := 0, 0
	for i < len(tf) && j < len(uf) {
		switch {
		case tf[i].Key == uf[j].Key:
			if tf[i].Optional && !uf[j].Optional {
				return false
			}
			if !Subtype(tf[i].Type, uf[j].Type) {
				return false
			}
			i++
			j++
		case tf[i].Key < uf[j].Key:
			// Left type allows a key the right type does not mention:
			// values carrying that key are not in ⟦u⟧.
			return false
		default:
			// Right-only keys must be optional, or left values (which
			// lack the key) are excluded.
			if !uf[j].Optional {
				return false
			}
			j++
		}
	}
	if i < len(tf) {
		return false
	}
	for ; j < len(uf); j++ {
		if !uf[j].Optional {
			return false
		}
	}
	return true
}
