package types

import (
	"math/rand"
	"testing"

	"repro/internal/value"
)

func mustRec(t *testing.T, src string) *Record {
	t.Helper()
	r, ok := MustParse(src).(*Record)
	if !ok {
		t.Fatalf("not a record: %s", src)
	}
	return r
}

func sampleVariants(t *testing.T) *Variants {
	t.Helper()
	return MustVariants("type", false, []Variant{
		{Tag: "push", Type: mustRec(t, `{type: Str, sha: Str}`)},
		{Tag: "fork", Type: mustRec(t, `{type: Str, repo: Str, stars: Num?}`)},
	}, mustRec(t, `{id: Num}`))
}

func sampleWrapper(t *testing.T) *Variants {
	t.Helper()
	return MustVariants("", true, []Variant{
		{Tag: "delete", Type: mustRec(t, `{delete: {id: Num}}`)},
		{Tag: "scrub_geo", Type: mustRec(t, `{scrub_geo: {up_to: Num}}`)},
	}, mustRec(t, `{id: Num, text: Str}`))
}

func TestVariantsStringParseRoundTrip(t *testing.T) {
	cases := []Type{
		sampleVariants(t),
		sampleWrapper(t),
		MustCollapsedVariants(mustRec(t, `{a: Num, b: Str?}`)),
		MustVariants("k", false, []Variant{{Tag: "only", Type: mustRec(t, `{k: Str}`)}}, nil),
	}
	for _, tt := range cases {
		s := tt.String()
		back, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !Equal(tt, back) {
			t.Errorf("round trip changed %q into %q", s, back)
		}
	}
}

func TestVariantsCodecRoundTrip(t *testing.T) {
	for _, tt := range []Type{sampleVariants(t), sampleWrapper(t), MustCollapsedVariants(mustRec(t, `{a: Num}`))} {
		data, err := MarshalJSON(tt)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		back, err := UnmarshalJSON(data)
		if err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !Equal(tt, back) {
			t.Errorf("codec round trip changed %s into %s", tt, back)
		}
	}
}

func TestVariantsConstructorValidation(t *testing.T) {
	r := mustRec(t, `{a: Num}`)
	if _, err := NewVariants("", false, []Variant{{Tag: "a", Type: r}}, nil); err == nil {
		t.Error("want error for neither key nor wrapper")
	}
	if _, err := NewVariants("k", true, []Variant{{Tag: "a", Type: r}}, nil); err == nil {
		t.Error("want error for both key and wrapper")
	}
	if _, err := NewVariants("k", false, nil, r); err == nil {
		t.Error("want error for zero cases")
	}
	if _, err := NewVariants("k", false, []Variant{{Tag: "a", Type: r}, {Tag: "a", Type: r}}, nil); err == nil {
		t.Error("want error for duplicate tags")
	}
	if _, err := NewCollapsedVariants(nil); err == nil {
		t.Error("want error for collapsed without a record")
	}
}

func TestVariantsMemberRouting(t *testing.T) {
	v := sampleVariants(t)
	push := value.MustRecord(
		value.Field{Key: "type", Value: value.Str("push")},
		value.Field{Key: "sha", Value: value.Str("abc")},
	)
	if !Member(push, v) {
		t.Error("push record should be a member via the push case")
	}
	// A push-tagged record with fork fields must NOT be admitted: the
	// discriminator routes it to the push case only.
	bad := value.MustRecord(
		value.Field{Key: "type", Value: value.Str("push")},
		value.Field{Key: "repo", Value: value.Str("x")},
	)
	if Member(bad, v) {
		t.Error("push-tagged record with fork fields must not be a member")
	}
	// No discriminator: falls to Other.
	plain := value.MustRecord(value.Field{Key: "id", Value: value.Num(1)})
	if !Member(plain, v) {
		t.Error("undiscriminated record should fall through to Other")
	}

	w := sampleWrapper(t)
	del := value.MustRecord(value.Field{Key: "delete", Value: value.MustRecord(
		value.Field{Key: "id", Value: value.Num(7)},
	)})
	if !Member(del, w) {
		t.Error("wrapper delete should be a member")
	}
	tweet := value.MustRecord(
		value.Field{Key: "id", Value: value.Num(7)},
		value.Field{Key: "text", Value: value.Str("hi")},
	)
	if !Member(tweet, w) {
		t.Error("tweet should fall through to wrapper Other")
	}
}

func TestVariantsSubtype(t *testing.T) {
	v := sampleVariants(t)
	if !Subtype(v, v) {
		t.Error("variants should be a subtype of themselves")
	}
	// The flattened union of components covers the tagged union.
	flat := MustUnion(
		MustParse(`{type: Str, sha: Str}`),
		MustParse(`{type: Str, repo: Str, stars: Num?}`),
		MustParse(`{id: Num}`),
	)
	if !Subtype(v, flat) {
		t.Error("variants should fit the union of their components")
	}
	// A record that cannot carry the discriminator passes through Other.
	if !Subtype(MustParse(`{id: Num}`), Type(v)) {
		t.Error("undiscriminated record should fit via Other")
	}
	// A record that could carry the discriminator must not sneak in via
	// Other.
	if Subtype(MustParse(`{id: Num, type: Str}`), Type(v)) {
		t.Error("record admitting the discriminator key must not fit via Other")
	}
	// Collapsed compares by its record.
	c := MustCollapsedVariants(mustRec(t, `{a: Num, b: Str?}`))
	if !Subtype(MustParse(`{a: Num}`), Type(c)) {
		t.Error("record should fit a collapsed union via its record")
	}
	if !Subtype(Type(c), MustParse(`{a: Num, b: Str?}`)) {
		t.Error("collapsed union should fit its record")
	}
}

func TestVariantsCompareAndHash(t *testing.T) {
	a := sampleVariants(t)
	b := sampleVariants(t)
	if Compare(a, b) != 0 || Hash(a) != Hash(b) {
		t.Error("structurally equal variants must compare equal and hash equal")
	}
	w := sampleWrapper(t)
	if Compare(a, w) == 0 {
		t.Error("keyed and wrapper unions must differ")
	}
	if Compare(a, w) != -Compare(w, a) {
		t.Error("compare must be antisymmetric")
	}
	// Distinct kinds stay ordered around the new ordinal.
	if Compare(MustParse(`{*: Num}`), a) >= 0 {
		t.Error("maps sort before variants")
	}
	if Compare(a, MustParse(`[Num*]`)) >= 0 {
		t.Error("variants sort before arrays")
	}
	if k, ok := KindOf(a); !ok || k != KindRecord {
		t.Error("variants must share the record kind")
	}
}

func TestVariantsWitness(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, tt := range []Type{sampleVariants(t), sampleWrapper(t), MustCollapsedVariants(mustRec(t, `{a: Num}`))} {
		for i := 0; i < 50; i++ {
			v, ok := Witness(tt, r)
			if !ok {
				t.Fatalf("witness failed for %s", tt)
			}
			if !Member(v, tt) {
				t.Fatalf("witness %v is not a member of %s", v, tt)
			}
		}
	}
}
