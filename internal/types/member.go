package types

import (
	"fmt"

	"repro/internal/value"
)

// Member implements the semantic interpretation ⟦T⟧ of Section 4 as a
// decision procedure: it reports whether the JSON value v belongs to the
// set of values denoted by the type t.
//
//   - no value belongs to ε;
//   - basic values belong to their basic type;
//   - a record belongs to a record type iff every field of the record is
//     typed by a same-key field of the type and every mandatory field of
//     the type is present in the record;
//   - an array belongs to a tuple type iff they have the same length and
//     elements belong positionally;
//   - an array belongs to [T*] iff every element belongs to T (so the
//     empty array belongs to every [T*], including [ε*]);
//   - a value belongs to a union iff it belongs to some alternative.
func Member(v value.Value, t Type) bool {
	switch tt := t.(type) {
	case EmptyType:
		return false
	case Basic:
		return value.Kind(Kind(tt)) == v.Kind()
	case *Record:
		rv, ok := v.(*value.Record)
		if !ok {
			return false
		}
		// Every value field must be allowed and well-typed; every
		// mandatory type field must be present. Both field lists are
		// sorted by key, so merge them.
		vf := rv.Fields()
		tf := tt.fields
		i, j := 0, 0
		for i < len(vf) && j < len(tf) {
			switch {
			case vf[i].Key == tf[j].Key:
				if !Member(vf[i].Value, tf[j].Type) {
					return false
				}
				i++
				j++
			case vf[i].Key < tf[j].Key:
				return false // value has a key the type does not mention
			default:
				if !tf[j].Optional {
					return false // mandatory field absent
				}
				j++
			}
		}
		if i < len(vf) {
			return false // leftover value keys not mentioned by the type
		}
		for ; j < len(tf); j++ {
			if !tf[j].Optional {
				return false
			}
		}
		return true
	case *Map:
		rv, ok := v.(*value.Record)
		if !ok {
			return false
		}
		for _, f := range rv.Fields() {
			if !Member(f.Value, tt.elem) {
				return false
			}
		}
		return true
	case *Variants:
		rv, ok := v.(*value.Record)
		if !ok {
			return false
		}
		if tt.collapsed {
			return Member(v, tt.other)
		}
		// Route the record by its discriminator: a matching tag admits
		// through that case. Other is a catch-all — values the routing
		// misses (or whose routed case rejects them) still belong when
		// Other admits them. The catch-all semantics is what lets fusion
		// absorb arbitrary plain records into Other soundly, keeping the
		// merge algebra order-independent (docs/UNIONS.md).
		if tt.wrapper {
			if fs := rv.Fields(); len(fs) == 1 {
				if _, isRec := fs[0].Value.(*value.Record); isRec {
					if c, ok := tt.Get(fs[0].Key); ok && Member(v, c.Type) {
						return true
					}
				}
			}
		} else if fv := rv.Get(tt.key); fv != nil {
			if s, isStr := fv.(value.Str); isStr {
				if c, ok := tt.Get(string(s)); ok && Member(v, c.Type) {
					return true
				}
			}
		}
		return tt.other != nil && Member(v, tt.other)
	case *Tuple:
		av, ok := v.(value.Array)
		if !ok || len(av) != len(tt.elems) {
			return false
		}
		for i, e := range av {
			if !Member(e, tt.elems[i]) {
				return false
			}
		}
		return true
	case *Repeated:
		av, ok := v.(value.Array)
		if !ok {
			return false
		}
		for _, e := range av {
			if !Member(e, tt.elem) {
				return false
			}
		}
		return true
	case *Union:
		for _, a := range tt.alts {
			if Member(v, a) {
				return true
			}
		}
		return false
	default:
		panic(fmt.Sprintf("types: unknown type %T", t))
	}
}
