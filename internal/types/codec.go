package types

import (
	"encoding/json"
	"fmt"
)

// The codec serializes types to a small JSON document format so that
// inferred schemas can be persisted and exchanged (the schema repository
// in internal/schemarepo stores per-partition schemas this way). This is
// distinct from the JSON Schema export in internal/jsonschema: the codec
// is a loss-free round trip of our own AST.

// wireType is the serialized form of a Type.
type wireType struct {
	K      string      `json:"k"`
	Fields []wireField `json:"fields,omitempty"`
	Elems  []*wireType `json:"elems,omitempty"`
	Elem   *wireType   `json:"elem,omitempty"`
	Alts   []*wireType `json:"alts,omitempty"`
	// Tagged-union fields (K == "variants"): the discriminator key (keyed
	// mode), the wrapper/collapsed mode markers, the cases, and the Other
	// record reusing Elem.
	Key       string     `json:"key,omitempty"`
	Wrapper   bool       `json:"wrapper,omitempty"`
	Collapsed bool       `json:"collapsed,omitempty"`
	Cases     []wireCase `json:"cases,omitempty"`
}

type wireField struct {
	Key  string    `json:"key"`
	Type *wireType `json:"type"`
	Opt  bool      `json:"opt,omitempty"`
}

type wireCase struct {
	Tag  string    `json:"tag"`
	Type *wireType `json:"type"`
}

func toWire(t Type) *wireType {
	switch tt := t.(type) {
	case Basic:
		switch tt {
		case Null:
			return &wireType{K: "null"}
		case Bool:
			return &wireType{K: "bool"}
		case Num:
			return &wireType{K: "num"}
		case Str:
			return &wireType{K: "str"}
		}
		panic(fmt.Sprintf("types: unknown basic type %d", tt))
	case EmptyType:
		return &wireType{K: "empty"}
	case *Record:
		fs := make([]wireField, len(tt.fields))
		for i, f := range tt.fields {
			fs[i] = wireField{Key: f.Key, Type: toWire(f.Type), Opt: f.Optional}
		}
		// Fields is non-nil even when empty so "{}" round-trips.
		if fs == nil {
			fs = []wireField{}
		}
		return &wireType{K: "record", Fields: fs}
	case *Tuple:
		es := make([]*wireType, len(tt.elems))
		for i, e := range tt.elems {
			es[i] = toWire(e)
		}
		return &wireType{K: "tuple", Elems: es}
	case *Map:
		return &wireType{K: "map", Elem: toWire(tt.elem)}
	case *Variants:
		w := &wireType{K: "variants", Key: tt.key, Wrapper: tt.wrapper, Collapsed: tt.collapsed}
		for _, c := range tt.cases {
			w.Cases = append(w.Cases, wireCase{Tag: c.Tag, Type: toWire(c.Type)})
		}
		if tt.other != nil {
			w.Elem = toWire(tt.other)
		}
		return w
	case *Repeated:
		return &wireType{K: "rep", Elem: toWire(tt.elem)}
	case *Union:
		as := make([]*wireType, len(tt.alts))
		for i, a := range tt.alts {
			as[i] = toWire(a)
		}
		return &wireType{K: "union", Alts: as}
	default:
		panic(fmt.Sprintf("types: unknown type %T", t))
	}
}

func fromWire(w *wireType) (Type, error) {
	if w == nil {
		return nil, fmt.Errorf("types: nil wire type")
	}
	switch w.K {
	case "null":
		return Null, nil
	case "bool":
		return Bool, nil
	case "num":
		return Num, nil
	case "str":
		return Str, nil
	case "empty":
		return Empty, nil
	case "record":
		fs := make([]Field, len(w.Fields))
		for i, wf := range w.Fields {
			ft, err := fromWire(wf.Type)
			if err != nil {
				return nil, fmt.Errorf("field %q: %w", wf.Key, err)
			}
			fs[i] = Field{Key: wf.Key, Type: ft, Optional: wf.Opt}
		}
		return NewRecord(fs...)
	case "tuple":
		es := make([]Type, len(w.Elems))
		for i, we := range w.Elems {
			e, err := fromWire(we)
			if err != nil {
				return nil, fmt.Errorf("tuple element %d: %w", i, err)
			}
			es[i] = e
		}
		return NewTuple(es...)
	case "rep":
		e, err := fromWire(w.Elem)
		if err != nil {
			return nil, fmt.Errorf("repeated element: %w", err)
		}
		return NewRepeated(e)
	case "map":
		e, err := fromWire(w.Elem)
		if err != nil {
			return nil, fmt.Errorf("map element: %w", err)
		}
		return NewMap(e)
	case "variants":
		var other *Record
		if w.Elem != nil {
			o, err := fromWire(w.Elem)
			if err != nil {
				return nil, fmt.Errorf("variants other: %w", err)
			}
			r, ok := o.(*Record)
			if !ok {
				return nil, fmt.Errorf("types: variants other is %T, want record", o)
			}
			other = r
		}
		if w.Collapsed {
			return NewCollapsedVariants(other)
		}
		cs := make([]Variant, len(w.Cases))
		for i, wc := range w.Cases {
			ct, err := fromWire(wc.Type)
			if err != nil {
				return nil, fmt.Errorf("variant %q: %w", wc.Tag, err)
			}
			r, ok := ct.(*Record)
			if !ok {
				return nil, fmt.Errorf("types: variant %q is %T, want record", wc.Tag, ct)
			}
			cs[i] = Variant{Tag: wc.Tag, Type: r}
		}
		return NewVariants(w.Key, w.Wrapper, cs, other)
	case "union":
		as := make([]Type, len(w.Alts))
		for i, wa := range w.Alts {
			a, err := fromWire(wa)
			if err != nil {
				return nil, fmt.Errorf("union alternative %d: %w", i, err)
			}
			as[i] = a
		}
		if len(as) < 2 {
			return nil, fmt.Errorf("types: union with %d alternatives", len(as))
		}
		return NewUnion(as...)
	default:
		return nil, fmt.Errorf("types: unknown wire kind %q", w.K)
	}
}

// MarshalJSON encodes the type as a JSON document that DecodeJSON
// round-trips.
func MarshalJSON(t Type) ([]byte, error) {
	if t == nil {
		return nil, fmt.Errorf("types: cannot marshal nil type")
	}
	return json.Marshal(toWire(t))
}

// UnmarshalJSON decodes a type previously encoded with MarshalJSON.
func UnmarshalJSON(data []byte) (Type, error) {
	var w wireType
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("types: decoding type: %w", err)
	}
	return fromWire(&w)
}
