package types

import (
	"testing"
)

// FuzzParseTypeSyntax throws arbitrary strings at the type-expression
// parser: it must never panic, and anything it accepts must round-trip
// through the printer.
func FuzzParseTypeSyntax(f *testing.F) {
	seeds := []string{
		"Null", "Bool", "Num", "Str", "ε", "Empty",
		"{}", "[]", "[ε*]",
		"{a: Num, b: Str?}",
		"{b: (Num + Str)?}",
		"[Num, Str]", "[(Num + {E: Str})*]",
		"Num + Str + {x: Bool}",
		`{"quoted key": [Bool*]}`,
		"((Num))", "{a: {b: {c: [Null]}}}",
		"{a: Num, a: Str}", "[*]", "Num +", "{a:}", "(",
		`{"A": Num}`, "{x-y: Num?}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tt, err := Parse(src)
		if err != nil {
			return
		}
		rendered := tt.String()
		back, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q as %q, which does not re-parse: %v", src, rendered, err)
		}
		if !Equal(tt, back) {
			t.Fatalf("round trip changed %q: %q vs %q", src, rendered, back.String())
		}
		if tt.Size() < 1 {
			t.Fatalf("parsed type %q has size %d", rendered, tt.Size())
		}
	})
}

// FuzzCodecRoundTrip checks the JSON codec on arbitrary documents: no
// panics, and decoded types re-encode losslessly.
func FuzzCodecRoundTrip(f *testing.F) {
	for _, s := range []string{
		`{"k":"num"}`,
		`{"k":"record","fields":[{"key":"a","type":{"k":"str"},"opt":true}]}`,
		`{"k":"union","alts":[{"k":"num"},{"k":"str"}]}`,
		`{"k":"rep","elem":{"k":"empty"}}`,
		`{"k":"tuple","elems":[]}`,
		`{"k":"bogus"}`, `{}`, `[]`, `null`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tt, err := UnmarshalJSON(data)
		if err != nil {
			return
		}
		enc, err := MarshalJSON(tt)
		if err != nil {
			t.Fatalf("decoded %q but cannot re-encode: %v", data, err)
		}
		back, err := UnmarshalJSON(enc)
		if err != nil || !Equal(tt, back) {
			t.Fatalf("codec round trip failed for %q -> %q: %v", data, enc, err)
		}
	})
}
