package types

import (
	"strings"

	"repro/internal/value"
)

// The printer renders types in the paper's concrete syntax:
//
//	Null, Bool, Num, Str        basic types
//	ε                           the empty type
//	{a: Num, b: Str?}           record type with optional field b
//	[Num, Str]                  tuple (positional) array type
//	[(Num + Str)*]              simplified array type
//	Num + Str                   union type
//
// Union alternatives in field position or inside a repeated type are
// parenthesized so that the output parses back unambiguously; Parse in
// parse.go accepts exactly this syntax.

// String renders the basic type name.
func (b Basic) String() string { return Kind(b).String() }

// String renders ε.
func (EmptyType) String() string { return "ε" }

// String renders the record type in the paper's syntax.
func (r *Record) String() string {
	var sb strings.Builder
	r.appendTo(&sb)
	return sb.String()
}

// String renders the tuple array type.
func (t *Tuple) String() string {
	var sb strings.Builder
	t.appendTo(&sb)
	return sb.String()
}

// String renders the simplified array type [T*].
func (r *Repeated) String() string {
	var sb strings.Builder
	r.appendTo(&sb)
	return sb.String()
}

// String renders the union type T1 + ... + Tn.
func (u *Union) String() string {
	var sb strings.Builder
	u.appendTo(&sb)
	return sb.String()
}

type appender interface{ appendTo(*strings.Builder) }

func appendType(sb *strings.Builder, t Type) {
	if a, ok := t.(appender); ok {
		a.appendTo(sb)
		return
	}
	sb.WriteString(t.String())
}

func (b Basic) appendTo(sb *strings.Builder)   { sb.WriteString(b.String()) }
func (EmptyType) appendTo(sb *strings.Builder) { sb.WriteString("ε") }

func (m *Map) appendTo(sb *strings.Builder) {
	sb.WriteString("{*: ")
	appendType(sb, m.elem)
	sb.WriteByte('}')
}

// appendTo renders a tagged union:
//
//	variants(k){tag1: {...}, tag2: {...}, *: {...}}   keyed on field k
//	wrapper{tag1: {...}, *: {...}}                    single-field wrappers
//	collapsed{*: {...}}                               failed hypothesis
//
// The trailing `*: R` entry is the Other record and is omitted when
// nil. Tags and the key follow the record-key quoting rules.
func (v *Variants) appendTo(sb *strings.Builder) {
	switch {
	case v.collapsed:
		sb.WriteString("collapsed")
	case v.wrapper:
		sb.WriteString("wrapper")
	default:
		sb.WriteString("variants(")
		appendKey(sb, v.key)
		sb.WriteByte(')')
	}
	sb.WriteByte('{')
	for i, c := range v.cases {
		if i > 0 {
			sb.WriteString(", ")
		}
		appendKey(sb, c.Tag)
		sb.WriteString(": ")
		c.Type.appendTo(sb)
	}
	if v.other != nil {
		if len(v.cases) > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("*: ")
		v.other.appendTo(sb)
	}
	sb.WriteByte('}')
}

func (r *Record) appendTo(sb *strings.Builder) {
	sb.WriteByte('{')
	for i, f := range r.fields {
		if i > 0 {
			sb.WriteString(", ")
		}
		appendKey(sb, f.Key)
		sb.WriteString(": ")
		_, isUnion := f.Type.(*Union)
		if isUnion && f.Optional {
			sb.WriteByte('(')
			appendType(sb, f.Type)
			sb.WriteByte(')')
		} else {
			appendType(sb, f.Type)
		}
		if f.Optional {
			sb.WriteByte('?')
		}
	}
	sb.WriteByte('}')
}

func (t *Tuple) appendTo(sb *strings.Builder) {
	sb.WriteByte('[')
	for i, e := range t.elems {
		if i > 0 {
			sb.WriteString(", ")
		}
		appendType(sb, e)
	}
	sb.WriteByte(']')
}

func (r *Repeated) appendTo(sb *strings.Builder) {
	sb.WriteByte('[')
	if _, isUnion := r.elem.(*Union); isUnion {
		sb.WriteByte('(')
		appendType(sb, r.elem)
		sb.WriteString(")*]")
		return
	}
	appendType(sb, r.elem)
	sb.WriteString("*]")
}

func (u *Union) appendTo(sb *strings.Builder) {
	for i, a := range u.alts {
		if i > 0 {
			sb.WriteString(" + ")
		}
		appendType(sb, a)
	}
}

// appendKey writes a record key, quoting it unless it is a bare
// identifier that cannot be confused with syntax.
func appendKey(sb *strings.Builder, key string) {
	if isBareKey(key) {
		sb.WriteString(key)
		return
	}
	b := value.AppendQuoted(nil, key)
	sb.Write(b)
}

// isBareKey reports whether key can be printed unquoted: a nonempty
// sequence of letters, digits, '_' or '-' not starting with a digit
// or '-'.
func isBareKey(key string) bool {
	if key == "" {
		return false
	}
	for i, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case (r >= '0' && r <= '9') || r == '-':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Indent renders t in an indented multi-line form for human consumption:
// each record field and union alternative on its own line. The compact
// String form remains the parseable canonical syntax.
func Indent(t Type) string {
	var sb strings.Builder
	indentTo(&sb, t, 0, false)
	return sb.String()
}

func indentTo(sb *strings.Builder, t Type, level int, inUnion bool) {
	pad := func(n int) {
		for i := 0; i < n; i++ {
			sb.WriteString("  ")
		}
	}
	switch tt := t.(type) {
	case Basic, EmptyType:
		sb.WriteString(t.String())
	case *Record:
		if tt.Len() == 0 {
			sb.WriteString("{}")
			return
		}
		sb.WriteString("{\n")
		for i, f := range tt.fields {
			pad(level + 1)
			appendKey(sb, f.Key)
			sb.WriteString(": ")
			_, isUnion := f.Type.(*Union)
			if isUnion && f.Optional {
				sb.WriteByte('(')
				indentTo(sb, f.Type, level+1, false)
				sb.WriteByte(')')
			} else {
				indentTo(sb, f.Type, level+1, false)
			}
			if f.Optional {
				sb.WriteByte('?')
			}
			if i < len(tt.fields)-1 {
				sb.WriteByte(',')
			}
			sb.WriteByte('\n')
		}
		pad(level)
		sb.WriteByte('}')
	case *Tuple:
		if tt.Len() == 0 {
			sb.WriteString("[]")
			return
		}
		sb.WriteString("[\n")
		for i, e := range tt.elems {
			pad(level + 1)
			indentTo(sb, e, level+1, false)
			if i < len(tt.elems)-1 {
				sb.WriteByte(',')
			}
			sb.WriteByte('\n')
		}
		pad(level)
		sb.WriteByte(']')
	case *Map:
		sb.WriteString("{*: ")
		indentTo(sb, tt.elem, level, false)
		sb.WriteByte('}')
	case *Variants:
		switch {
		case tt.collapsed:
			sb.WriteString("collapsed")
		case tt.wrapper:
			sb.WriteString("wrapper")
		default:
			sb.WriteString("variants(")
			appendKey(sb, tt.key)
			sb.WriteByte(')')
		}
		sb.WriteString("{\n")
		n := len(tt.cases)
		if tt.other != nil {
			n++
		}
		for i, c := range tt.cases {
			pad(level + 1)
			appendKey(sb, c.Tag)
			sb.WriteString(": ")
			indentTo(sb, c.Type, level+1, false)
			if i < n-1 {
				sb.WriteByte(',')
			}
			sb.WriteByte('\n')
		}
		if tt.other != nil {
			pad(level + 1)
			sb.WriteString("*: ")
			indentTo(sb, tt.other, level+1, false)
			sb.WriteByte('\n')
		}
		pad(level)
		sb.WriteByte('}')
	case *Repeated:
		sb.WriteByte('[')
		if _, isUnion := tt.elem.(*Union); isUnion {
			sb.WriteByte('(')
			indentTo(sb, tt.elem, level, false)
			sb.WriteString(")*]")
			return
		}
		indentTo(sb, tt.elem, level, false)
		sb.WriteString("*]")
	case *Union:
		for i, a := range tt.alts {
			if i > 0 {
				sb.WriteString(" + ")
			}
			indentTo(sb, a, level, true)
		}
	}
}
