package types

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf8"
)

// Parse parses a type expression in the concrete syntax produced by
// String (and Indent): basic type names, ε (also accepted as "Empty"),
// record types {k: T, k2: T2?}, tuple array types [T1, T2], simplified
// array types [T*], unions T + U, and parenthesized types. Keys may be
// bare identifiers or double-quoted JSON strings.
//
// Parse(t.String()) is the identity on canonical types, which the tests
// verify by round-tripping randomly generated types.
func Parse(src string) (Type, error) {
	p := &typeParser{src: src}
	p.skipSpace()
	t, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.errorf("unexpected trailing input")
	}
	return t, nil
}

// MustParse is Parse that panics on error; for tests and literals.
func MustParse(src string) Type {
	t, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return t
}

type typeParser struct {
	src string
	pos int
}

func (p *typeParser) errorf(format string, args ...any) error {
	return fmt.Errorf("types: parse error at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *typeParser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *typeParser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *typeParser) expect(c byte) error {
	if p.peek() != c {
		return p.errorf("expected %q", string(c))
	}
	p.pos++
	return nil
}

// parseUnion parses term ('+' term)*.
func (p *typeParser) parseUnion() (Type, error) {
	first, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	alts := []Type{first}
	for {
		p.skipSpace()
		if p.peek() != '+' {
			break
		}
		p.pos++
		p.skipSpace()
		next, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		alts = append(alts, next)
	}
	if len(alts) == 1 {
		return first, nil
	}
	return NewUnion(alts...)
}

// parseTerm parses a non-union type or a parenthesized type.
func (p *typeParser) parseTerm() (Type, error) {
	p.skipSpace()
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		t, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return t, nil
	case c == '{':
		return p.parseRecord()
	case c == '[':
		return p.parseArray()
	case c == 0:
		return nil, p.errorf("unexpected end of input")
	default:
		return p.parseName()
	}
}

func (p *typeParser) parseName() (Type, error) {
	start := p.pos
	for p.pos < len(p.src) {
		r, size := utf8.DecodeRuneInString(p.src[p.pos:])
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == 'ε' {
			p.pos += size
			continue
		}
		break
	}
	name := p.src[start:p.pos]
	switch name {
	case "Null":
		return Null, nil
	case "Bool":
		return Bool, nil
	case "Num":
		return Num, nil
	case "Str":
		return Str, nil
	case "ε", "Empty":
		return Empty, nil
	case "variants":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		p.skipSpace()
		key, err := p.parseKey()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return p.parseVariantsBody(key, false)
	case "wrapper":
		return p.parseVariantsBody("", true)
	case "collapsed":
		if err := p.expect('{'); err != nil {
			return nil, err
		}
		p.skipSpace()
		if err := p.expect('*'); err != nil {
			return nil, err
		}
		p.skipSpace()
		if err := p.expect(':'); err != nil {
			return nil, err
		}
		other, err := p.parseCaseRecord()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if err := p.expect('}'); err != nil {
			return nil, err
		}
		return NewCollapsedVariants(other)
	case "":
		return nil, p.errorf("expected a type")
	default:
		return nil, p.errorf("unknown type name %q", name)
	}
}

// parseVariantsBody parses the `{tag: {...}, ..., *: {...}}` body shared
// by the keyed and wrapper forms; the `*: R` entry, when present, must
// be last.
func (p *typeParser) parseVariantsBody(key string, wrapper bool) (Type, error) {
	p.skipSpace()
	if err := p.expect('{'); err != nil {
		return nil, err
	}
	var cases []Variant
	var other *Record
	for {
		p.skipSpace()
		if p.peek() == '*' {
			p.pos++
			p.skipSpace()
			if err := p.expect(':'); err != nil {
				return nil, err
			}
			o, err := p.parseCaseRecord()
			if err != nil {
				return nil, err
			}
			other = o
			p.skipSpace()
			if err := p.expect('}'); err != nil {
				return nil, err
			}
			break
		}
		tag, err := p.parseKey()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if err := p.expect(':'); err != nil {
			return nil, err
		}
		ct, err := p.parseCaseRecord()
		if err != nil {
			return nil, err
		}
		cases = append(cases, Variant{Tag: tag, Type: ct})
		p.skipSpace()
		switch p.peek() {
		case ',':
			p.pos++
			continue
		case '}':
			p.pos++
		default:
			return nil, p.errorf("expected ',' or '}' in variants")
		}
		break
	}
	return NewVariants(key, wrapper, cases, other)
}

// parseCaseRecord parses a record type in a position where the variants
// syntax requires one (case bodies and the Other entry).
func (p *typeParser) parseCaseRecord() (*Record, error) {
	p.skipSpace()
	t, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	r, ok := t.(*Record)
	if !ok {
		return nil, p.errorf("variant case must be a record type, got %s", t)
	}
	return r, nil
}

func (p *typeParser) parseRecord() (Type, error) {
	if err := p.expect('{'); err != nil {
		return nil, err
	}
	var fields []Field
	p.skipSpace()
	if p.peek() == '}' {
		p.pos++
		return NewRecord()
	}
	if p.peek() == '*' {
		// Abstracted record type {*: T}.
		p.pos++
		p.skipSpace()
		if err := p.expect(':'); err != nil {
			return nil, err
		}
		elem, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if err := p.expect('}'); err != nil {
			return nil, err
		}
		return NewMap(elem)
	}
	for {
		p.skipSpace()
		key, err := p.parseKey()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if err := p.expect(':'); err != nil {
			return nil, err
		}
		t, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		opt := false
		p.skipSpace()
		if p.peek() == '?' {
			p.pos++
			opt = true
			p.skipSpace()
		}
		fields = append(fields, Field{Key: key, Type: t, Optional: opt})
		switch p.peek() {
		case ',':
			p.pos++
		case '}':
			p.pos++
			return NewRecord(fields...)
		default:
			return nil, p.errorf("expected ',' or '}' in record type")
		}
	}
}

func (p *typeParser) parseArray() (Type, error) {
	if err := p.expect('['); err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.peek() == ']' {
		p.pos++
		return EmptyTuple, nil
	}
	first, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.peek() == '*' {
		p.pos++
		p.skipSpace()
		if err := p.expect(']'); err != nil {
			return nil, err
		}
		return NewRepeated(first)
	}
	elems := []Type{first}
	for {
		switch p.peek() {
		case ',':
			p.pos++
			e, err := p.parseUnion()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
			p.skipSpace()
		case ']':
			p.pos++
			return NewTuple(elems...)
		default:
			return nil, p.errorf("expected ',', '*' or ']' in array type")
		}
	}
}

// parseKey parses a bare identifier or a double-quoted JSON string key.
func (p *typeParser) parseKey() (string, error) {
	if p.peek() == '"' {
		return p.parseQuotedKey()
	}
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9', c == '-':
			if p.pos == start {
				return "", p.errorf("record key cannot start with %q", string(c))
			}
		default:
			if p.pos == start {
				return "", p.errorf("expected a record key")
			}
			return p.src[start:p.pos], nil
		}
		p.pos++
	}
	if p.pos == start {
		return "", p.errorf("expected a record key")
	}
	return p.src[start:p.pos], nil
}

func (p *typeParser) parseQuotedKey() (string, error) {
	// Find the closing quote, honoring escapes, then let strconv do the
	// actual unescaping (JSON string escapes are a subset of Go's).
	start := p.pos
	p.pos++ // opening quote
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '\\':
			p.pos += 2
		case '"':
			p.pos++
			raw := p.src[start:p.pos]
			key, err := unquoteJSONString(raw)
			if err != nil {
				return "", p.errorf("bad quoted key %s: %v", raw, err)
			}
			return key, nil
		default:
			p.pos++
		}
	}
	return "", p.errorf("unterminated quoted key")
}

// unquoteJSONString unescapes a double-quoted JSON string literal.
// Invalid UTF-8 is replaced with U+FFFD, matching the JSON lexer, so
// keys always render back to what was parsed.
func unquoteJSONString(raw string) (string, error) {
	if len(raw) < 2 || raw[0] != '"' || raw[len(raw)-1] != '"' {
		return "", fmt.Errorf("not a quoted string")
	}
	body := sanitizeUTF8(raw[1 : len(raw)-1])
	if !strings.ContainsRune(body, '\\') {
		return body, nil
	}
	var sb strings.Builder
	for i := 0; i < len(body); {
		c := body[i]
		if c != '\\' {
			sb.WriteByte(c)
			i++
			continue
		}
		if i+1 >= len(body) {
			return "", fmt.Errorf("trailing backslash")
		}
		switch body[i+1] {
		case '"':
			sb.WriteByte('"')
			i += 2
		case '\\':
			sb.WriteByte('\\')
			i += 2
		case '/':
			sb.WriteByte('/')
			i += 2
		case 'n':
			sb.WriteByte('\n')
			i += 2
		case 't':
			sb.WriteByte('\t')
			i += 2
		case 'r':
			sb.WriteByte('\r')
			i += 2
		case 'b':
			sb.WriteByte('\b')
			i += 2
		case 'f':
			sb.WriteByte('\f')
			i += 2
		case 'u':
			if i+6 > len(body) {
				return "", fmt.Errorf("short \\u escape")
			}
			n, err := strconv.ParseUint(body[i+2:i+6], 16, 32)
			if err != nil {
				return "", fmt.Errorf("bad \\u escape: %v", err)
			}
			sb.WriteRune(rune(n))
			i += 6
		default:
			return "", fmt.Errorf("unknown escape \\%c", body[i+1])
		}
	}
	return sb.String(), nil
}

// sanitizeUTF8 replaces invalid byte sequences with U+FFFD.
func sanitizeUTF8(s string) string {
	if utf8.ValidString(s) {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s) + utf8.UTFMax)
	for _, r := range s {
		sb.WriteRune(r)
	}
	return sb.String()
}
