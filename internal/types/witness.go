package types

import (
	"fmt"
	"math/rand"

	"repro/internal/value"
)

// Witness generates a sample value belonging to ⟦t⟧, drawing choices
// (union alternatives, optional-field presence, array lengths) from r.
// It returns false when the type is uninhabited — ε itself, or a type
// whose every inhabitant would need a member of ε (e.g. a record with a
// mandatory ε field).
//
// Witnesses turn inferred schemas into documentation and test fixtures:
// a user exploring a dataset can ask for concrete examples of what the
// schema admits, and the property tests use Witness to validate the
// semantic operators against each other.
func Witness(t Type, r *rand.Rand) (value.Value, bool) {
	switch tt := t.(type) {
	case EmptyType:
		return nil, false
	case Basic:
		switch tt {
		case Null:
			return value.Null{}, true
		case Bool:
			return value.Bool(r.Intn(2) == 0), true
		case Num:
			return value.Num(float64(r.Intn(1000)) / 4), true
		default:
			return value.Str(sampleStrings[r.Intn(len(sampleStrings))]), true
		}
	case *Record:
		var fields []value.Field
		for _, f := range tt.fields {
			if f.Optional && r.Intn(2) == 0 {
				continue
			}
			v, ok := Witness(f.Type, r)
			if !ok {
				if f.Optional {
					continue // leave the uninhabited field out
				}
				return nil, false // mandatory field of an uninhabited type
			}
			fields = append(fields, value.Field{Key: f.Key, Value: v})
		}
		return value.MustRecord(fields...), true
	case *Tuple:
		elems := make(value.Array, tt.Len())
		for i, e := range tt.elems {
			v, ok := Witness(e, r)
			if !ok {
				return nil, false
			}
			elems[i] = v
		}
		return elems, true
	case *Map:
		n := r.Intn(3)
		var fields []value.Field
		for i := 0; i < n; i++ {
			v, ok := Witness(tt.elem, r)
			if !ok {
				break // uninhabited element: only {} inhabits
			}
			fields = append(fields, value.Field{Key: fmt.Sprintf("key%d", i), Value: v})
		}
		return value.MustRecord(fields...), true
	case *Variants:
		if tt.collapsed {
			return Witness(tt.other, r)
		}
		// Try components in a random rotation, forcing the discriminator
		// field to the case's tag for keyed unions, and keep the first
		// candidate the routing of Member actually admits.
		total := len(tt.cases)
		if tt.other != nil {
			total++
		}
		start := r.Intn(total)
		for i := 0; i < total; i++ {
			idx := (start + i) % total
			var cand value.Value
			var ok bool
			if idx == len(tt.cases) {
				cand, ok = Witness(tt.other, r)
			} else {
				c := tt.cases[idx]
				cand, ok = Witness(c.Type, r)
				if ok && !tt.wrapper {
					cand = withStrField(cand, tt.key, c.Tag)
				}
			}
			if ok && Member(cand, tt) {
				return cand, true
			}
		}
		return nil, false
	case *Repeated:
		n := r.Intn(3)
		elems := make(value.Array, 0, n)
		for i := 0; i < n; i++ {
			v, ok := Witness(tt.elem, r)
			if !ok {
				break // [ε*]: only the empty array inhabits
			}
			elems = append(elems, v)
		}
		return elems, true
	case *Union:
		// Try alternatives in a random rotation so every inhabited
		// branch can be produced.
		start := r.Intn(len(tt.alts))
		for i := 0; i < len(tt.alts); i++ {
			if v, ok := Witness(tt.alts[(start+i)%len(tt.alts)], r); ok {
				return v, true
			}
		}
		return nil, false
	default:
		return nil, false
	}
}

var sampleStrings = []string{"alpha", "beta", "example", "venice", "2016-03-15", ""}

// withStrField returns v with the field key set to the string s, adding
// the field if absent; non-record values pass through unchanged.
func withStrField(v value.Value, key, s string) value.Value {
	rv, ok := v.(*value.Record)
	if !ok {
		return v
	}
	var fields []value.Field
	replaced := false
	for _, f := range rv.Fields() {
		if f.Key == key {
			fields = append(fields, value.Field{Key: key, Value: value.Str(s)})
			replaced = true
			continue
		}
		fields = append(fields, f)
	}
	if !replaced {
		fields = append(fields, value.Field{Key: key, Value: value.Str(s)})
	}
	return value.MustRecord(fields...)
}
