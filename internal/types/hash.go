package types

import "fmt"

// Hash returns a 64-bit structural hash of the type, consistent with
// Equal: equal types hash equally. The map phase counts distinct types
// per partition (Tables 2-5); hashing directly over the structure avoids
// rendering every type to a string first, which dominates the cost on
// datasets where most types repeat.
func Hash(t Type) uint64 {
	return hashType(fnvOffset, t)
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func hashByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime
}

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = hashByte(h, s[i])
	}
	// Terminate so "ab"+"c" and "a"+"bc" differ.
	return hashByte(h, 0xff)
}

func hashType(h uint64, t Type) uint64 {
	switch tt := t.(type) {
	case EmptyType:
		return hashByte(h, 0x01)
	case Basic:
		return hashByte(hashByte(h, 0x02), byte(tt))
	case *Record:
		h = hashByte(h, 0x03)
		for _, f := range tt.fields {
			h = hashString(h, f.Key)
			if f.Optional {
				h = hashByte(h, 0x10)
			} else {
				h = hashByte(h, 0x11)
			}
			h = hashType(h, f.Type)
		}
		return hashByte(h, 0x04)
	case *Map:
		return hashType(hashByte(h, 0x05), tt.elem)
	case *Variants:
		h = hashByte(h, 0x0b)
		switch {
		case tt.collapsed:
			h = hashByte(h, 0x12)
		case tt.wrapper:
			h = hashByte(h, 0x13)
		default:
			h = hashString(hashByte(h, 0x14), tt.key)
		}
		for _, c := range tt.cases {
			h = hashString(h, c.Tag)
			h = hashType(h, c.Type)
		}
		if tt.other != nil {
			h = hashType(hashByte(h, 0x15), tt.other)
		}
		return hashByte(h, 0x0c)
	case *Tuple:
		h = hashByte(h, 0x06)
		for _, e := range tt.elems {
			h = hashType(h, e)
		}
		return hashByte(h, 0x07)
	case *Repeated:
		return hashType(hashByte(h, 0x08), tt.elem)
	case *Union:
		h = hashByte(h, 0x09)
		for _, a := range tt.alts {
			h = hashType(h, a)
		}
		return hashByte(h, 0x0a)
	default:
		panic(fmt.Sprintf("types: unknown type %T", t))
	}
}
