package enrich

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
)

// bloom is a Bloom-filter sketch of the scalar values at a path: m
// bits, k double-hashed probes per value. Bit-wise OR is commutative,
// associative and idempotent, so like the HLL sketch it would survive
// even duplicated observations. Filters of different geometry (m, k)
// merge to the absorbing invalid state; the all-zero filter is an
// identity regardless of geometry.
type bloom struct {
	m       int // bits
	k       int // hashes
	bits    []byte
	invalid bool
}

func newBloom(p Params) Monoid {
	m := p.BloomBits
	if m < 64 {
		m = 64
	}
	m = (m + 7) &^ 7 // whole bytes
	k := p.BloomHashes
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &bloom{m: m, k: k, bits: make([]byte, m/8)}
}

type wireBloom struct {
	M       int    `json:"m,omitempty"`
	K       int    `json:"k,omitempty"`
	Bits    string `json:"bits,omitempty"`
	Invalid bool   `json:"invalid,omitempty"`
}

func unmarshalBloom(data []byte, _ Params) (Monoid, error) {
	var w wireBloom
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, err
	}
	if w.Invalid {
		return &bloom{invalid: true}, nil
	}
	if w.M < 64 || w.M%8 != 0 || w.K < 1 || w.K > 16 {
		return nil, fmt.Errorf("enrich: bloom geometry m=%d k=%d invalid", w.M, w.K)
	}
	bits, err := base64.StdEncoding.DecodeString(w.Bits)
	if err != nil {
		return nil, fmt.Errorf("enrich: bloom bits: %w", err)
	}
	if len(bits) != w.M/8 {
		return nil, fmt.Errorf("enrich: bloom has %d bytes, want %d", len(bits), w.M/8)
	}
	return &bloom{m: w.M, k: w.K, bits: bits}, nil
}

func (b *bloom) observe(hash uint64) {
	if b.invalid {
		return
	}
	// Kirsch–Mitzenmacher double hashing: probe i uses h1 + i*h2.
	h1 := uint32(hash)
	h2 := uint32(hash >> 32)
	for i := 0; i < b.k; i++ {
		pos := (uint64(h1) + uint64(i)*uint64(h2)) % uint64(b.m)
		b.bits[pos/8] |= 1 << (pos % 8)
	}
}

// contains reports whether a value's probes are all set — false means
// definitely never observed, true means probably observed.
func (b *bloom) contains(hash uint64) bool {
	if b.invalid {
		return false
	}
	h1 := uint32(hash)
	h2 := uint32(hash >> 32)
	for i := 0; i < b.k; i++ {
		pos := (uint64(h1) + uint64(i)*uint64(h2)) % uint64(b.m)
		if b.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
	}
	return true
}

func (b *bloom) Null()         { b.observe(hashNull()) }
func (b *bloom) Bool(v bool)   { b.observe(hashBool(v)) }
func (b *bloom) Num(f float64) { b.observe(hashNum(f)) }
func (b *bloom) Str(s string)  { b.observe(hashStr(s)) }
func (b *bloom) ArrayLen(int)  {}

func (b *bloom) zero() bool {
	for _, v := range b.bits {
		if v != 0 {
			return false
		}
	}
	return true
}

func (b *bloom) Empty() bool { return !b.invalid && b.zero() }

func (b *bloom) Clone() Monoid {
	c := &bloom{m: b.m, k: b.k, invalid: b.invalid}
	c.bits = append([]byte(nil), b.bits...)
	return c
}

func (b *bloom) Merge(other Monoid) {
	o := other.(*bloom)
	switch {
	case o.invalid:
		b.invalid = true
		b.bits = nil
	case b.invalid || o.zero():
	case b.zero():
		b.m, b.k = o.m, o.k
		b.bits = append(b.bits[:0], o.bits...)
	case b.m != o.m || b.k != o.k:
		b.invalid = true
		b.bits = nil
	default:
		for i, v := range o.bits {
			b.bits[i] |= v
		}
	}
}

func (b *bloom) Fold() map[string]any {
	if b.invalid || b.zero() {
		return nil
	}
	return map[string]any{"x-bloomFilter": map[string]any{
		"m":    b.m,
		"k":    b.k,
		"bits": base64.StdEncoding.EncodeToString(b.bits),
	}}
}

func (b *bloom) MarshalState() ([]byte, error) {
	if b.invalid {
		return json.Marshal(wireBloom{Invalid: true})
	}
	return json.Marshal(wireBloom{M: b.m, K: b.k, Bits: base64.StdEncoding.EncodeToString(b.bits)})
}
