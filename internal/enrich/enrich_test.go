package enrich

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/enrich/monoidtest"
)

// fingerprint renders a monoid's abstract state: the serialized state
// plus the folded annotations (both deterministic).
func fingerprint(m Monoid) string {
	state, err := m.MarshalState()
	if err != nil {
		panic(err)
	}
	fold, err := json.Marshal(m.Fold())
	if err != nil {
		panic(err)
	}
	return fmt.Sprintf("empty=%v state=%s fold=%s", m.Empty(), state, fold)
}

// randStrings mixes format matches, near misses and plain words so the
// formats monoid exercises every counter.
var randStrings = []string{
	"2024-02-29", "1999-12-31", "2023-02-30", "2024-1-05", "2024-02-29T12:00:00Z",
	"2024-02-29T12:00:00+01:00", "2024-02-29T25:00:00Z",
	"f47ac10b-58cc-4372-a567-0e02b2c3d479", "F47AC10B-58CC-4372-A567-0E02B2C3D479",
	"f47ac10b-58cc-4372-a567-0e02b2c3d47", "http://example.com/a?b=c", "https://example.com",
	"http://", "ftp://example.com", "user@example.com", "user@localhost", "a@b.c",
	"@example.com", "hello", "", "   ", "123",
}

// randNums mixes integers, fractions, huge magnitudes and both zeros.
var randNums = []float64{
	0, -0.0, 1, -1, 0.5, -0.25, 3.14159, 1e17, -1e17, 1e-7, 2.5, 100, 42, 0.1, 1e300, -1e300,
}

// observeRandom feeds 0..23 random events into m.
func observeRandom(r *rand.Rand, m Monoid) {
	n := r.Intn(24)
	for i := 0; i < n; i++ {
		switch r.Intn(6) {
		case 0:
			m.Null()
		case 1:
			m.Bool(r.Intn(2) == 0)
		case 2:
			m.Num(randNums[r.Intn(len(randNums))])
		case 3:
			m.Str(randStrings[r.Intn(len(randStrings))])
		case 4:
			m.ArrayLen(r.Intn(10))
		case 5:
			m.Num(float64(r.Intn(5)))
		}
	}
}

// TestMonoidConformance runs every catalogue monoid through the shared
// harness: identity, commutativity, associativity, random merge trees,
// second-operand purity and serialization round-trips.
func TestMonoidConformance(t *testing.T) {
	params := DefaultParams()
	for _, def := range catalogue() {
		def := def
		monoidtest.Run(t, monoidtest.Subject{
			Name:  def.Name,
			Empty: func() any { return def.New(params) },
			Rand: func(r *rand.Rand) any {
				m := def.New(params)
				observeRandom(r, m)
				return m
			},
			Merge: func(a, b any) any {
				a.(Monoid).Merge(b.(Monoid))
				return a
			},
			Fingerprint: func(x any) string { return fingerprint(x.(Monoid)) },
			Marshal:     func(x any) ([]byte, error) { return x.(Monoid).MarshalState() },
			Unmarshal:   func(data []byte) (any, error) { return def.Unmarshal(data, params) },
		})
	}
}

// randLattice observes a few random synthetic values (records, arrays,
// scalars) into a fresh lattice of the set.
func randLattice(set *Set, r *rand.Rand) *Lattice {
	l := set.NewLattice()
	vals := r.Intn(6)
	for i := 0; i < vals; i++ {
		observeValue(r, l, 0)
	}
	return l
}

var latticeKeys = []string{"id", "name", "tags", "meta", "score"}

func observeValue(r *rand.Rand, l *Lattice, depth int) {
	kind := r.Intn(6)
	if depth >= 3 && kind >= 4 {
		kind = r.Intn(4)
	}
	switch kind {
	case 0:
		l.Null()
	case 1:
		l.Bool(r.Intn(2) == 0)
	case 2:
		l.Num(randNums[r.Intn(len(randNums))])
	case 3:
		l.Str(randStrings[r.Intn(len(randStrings))])
	case 4:
		l.BeginObject()
		n := r.Intn(3)
		for i := 0; i < n; i++ {
			l.Key(latticeKeys[r.Intn(len(latticeKeys))])
			observeValue(r, l, depth+1)
		}
		l.EndObject()
	case 5:
		l.BeginArray()
		n := r.Intn(4)
		for i := 0; i < n; i++ {
			observeValue(r, l, depth+1)
		}
		l.EndArray(n)
	}
}

func latticeJSON(t testing.TB, l *Lattice) string {
	t.Helper()
	data, err := json.Marshal(l)
	if err != nil {
		t.Fatalf("marshal lattice: %v", err)
	}
	return string(data)
}

func mustLatticeJSON(l *Lattice) string {
	data, err := json.Marshal(l)
	if err != nil {
		panic(err)
	}
	return string(data)
}

// TestLatticeConformance runs the whole Lattice (the composite the
// pipeline actually merges) through the same harness.
func TestLatticeConformance(t *testing.T) {
	set, err := ParseSet([]string{"all"})
	if err != nil {
		t.Fatal(err)
	}
	monoidtest.Run(t, monoidtest.Subject{
		Name:  "lattice",
		Empty: func() any { return set.NewLattice() },
		Rand:  func(r *rand.Rand) any { return randLattice(set, r) },
		Merge: func(a, b any) any {
			a.(*Lattice).Merge(b.(*Lattice))
			return a
		},
		Fingerprint: func(x any) string { return mustLatticeJSON(x.(*Lattice)) },
		Marshal:     func(x any) ([]byte, error) { return json.Marshal(x.(*Lattice)) },
		Unmarshal:   func(data []byte) (any, error) { return UnmarshalLattice(data) },
	})
}

func TestParseSet(t *testing.T) {
	set, err := ParseSet([]string{"hll, ranges", "ranges"})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(set.Names(), ","), "ranges,hll"; got != want {
		t.Fatalf("Names() = %s, want %s (canonical order, deduplicated)", got, want)
	}
	all, err := ParseSet([]string{"all"})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(all.Names(), ","), strings.Join(Names(), ","); got != want {
		t.Fatalf("all = %s, want %s", got, want)
	}
	if _, err := ParseSet([]string{"ranges", "bogus"}); err == nil ||
		!strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown monoid error = %v, want mention of bogus", err)
	}
	if _, err := ParseSet(nil); err == nil {
		t.Fatal("empty selection should error")
	}
}

func TestFormatDetection(t *testing.T) {
	cases := []struct {
		s    string
		want string // "" = no format
	}{
		{"2024-02-29", "date"},
		{"2023-02-30", ""}, // not a calendar date
		{"2024-1-05", ""},  // missing zero padding
		{"2024-02-29T12:00:00Z", "date-time"},
		{"2024-02-29T12:00:00+01:00", "date-time"},
		{"2024-02-29T25:00:00Z", ""}, // hour out of range
		{"f47ac10b-58cc-4372-a567-0e02b2c3d479", "uuid"},
		{"F47AC10B-58CC-4372-A567-0E02B2C3D479", "uuid"},
		{"f47ac10b-58cc-4372-a567-0e02b2c3d47", ""}, // one hex digit short
		{"http://example.com/a", "uri"},
		{"https://example.com", "uri"},
		{"http://", ""},
		{"ftp://example.com", ""},
		{"user@example.com", "email"},
		{"user@localhost", ""}, // no dot in domain
		{"a@b@c.com", ""},      // two @
		{"@example.com", ""},
		{"hello", ""},
	}
	for _, c := range cases {
		got := ""
		if i := detectFormat(c.s); i >= 0 {
			got = formatNames[i]
		}
		if got != c.want {
			t.Errorf("detectFormat(%q) = %q, want %q", c.s, got, c.want)
		}
	}
}

func TestFormatsFoldUnanimity(t *testing.T) {
	f := newFormats(DefaultParams())
	f.Str("2024-02-29")
	f.Str("1999-12-31")
	out := f.Fold()
	if out["format"] != "date" {
		t.Fatalf("unanimous dates: Fold() = %v, want format=date", out)
	}
	f.Str("hello")
	if out := f.Fold(); out["format"] != nil {
		t.Fatalf("mixed strings must not assert format; got %v", out)
	}
}

func TestHLLEstimate(t *testing.T) {
	h := newHLL(DefaultParams()).(*hll)
	const n = 5000
	for i := 0; i < n; i++ {
		h.Str(fmt.Sprintf("value-%d", i))
	}
	est := h.estimate()
	if est < n*8/10 || est > n*12/10 {
		t.Fatalf("estimate for %d distinct = %d, want within 20%%", n, est)
	}
	// Idempotent under re-observation.
	before := fingerprint(h)
	for i := 0; i < n; i++ {
		h.Str(fmt.Sprintf("value-%d", i))
	}
	if after := fingerprint(h); after != before {
		t.Fatal("re-observing the same values changed the sketch")
	}
}

func TestHLLSmallRange(t *testing.T) {
	h := newHLL(DefaultParams()).(*hll)
	for i := 0; i < 3; i++ {
		h.Num(float64(i))
	}
	if est := h.estimate(); est != 3 {
		t.Fatalf("estimate for 3 distinct = %d, want 3 (linear counting)", est)
	}
}

func TestBloomContains(t *testing.T) {
	b := newBloom(DefaultParams()).(*bloom)
	b.Str("alpha")
	b.Num(42)
	b.Bool(true)
	for _, h := range []uint64{hashStr("alpha"), hashNum(42), hashBool(true)} {
		if !b.contains(h) {
			t.Fatal("observed value reported absent")
		}
	}
	if b.contains(hashStr("never-observed-sentinel")) {
		t.Fatal("false positive on a sparse filter (would be astronomically unlikely)")
	}
	// The string "42" and the number 42 are distinct values.
	if b.contains(hashStr("42")) {
		t.Fatal(`string "42" should not collide with number 42`)
	}
}

// TestSketchMismatchPoison pins the absorbing-invalid stance: sketches
// of different geometry merge to the invalid state in either order,
// and annotations vanish rather than lie.
func TestSketchMismatchPoison(t *testing.T) {
	small := Params{HLLPrecision: 8, BloomBits: 512, BloomHashes: 4}
	big := Params{HLLPrecision: 12, BloomBits: 2048, BloomHashes: 6}
	mk := func(p Params, v string) (Monoid, Monoid) {
		h, b := newHLL(p), newBloom(p)
		h.Str(v)
		b.Str(v)
		return h, b
	}
	h1, b1 := mk(small, "x")
	h2, b2 := mk(big, "y")
	h1.Merge(h2)
	b1.Merge(b2)
	if !h1.(*hll).invalid || !b1.(*bloom).invalid {
		t.Fatal("mismatched sketches must poison")
	}
	if h1.Fold() != nil || b1.Fold() != nil {
		t.Fatal("poisoned sketches must not annotate")
	}
	// Commutative: the other order poisons too, and the states agree.
	h3, b3 := mk(big, "y")
	h4, b4 := mk(small, "x")
	h3.Merge(h4)
	b3.Merge(b4)
	if fingerprint(h3) != fingerprint(h1) || fingerprint(b3) != fingerprint(b1) {
		t.Fatal("poison is not commutative")
	}
	// An empty sketch stays an identity even across geometries.
	h5, _ := mk(small, "z")
	want := fingerprint(h5)
	h5.Merge(newHLL(big))
	if fingerprint(h5) != want {
		t.Fatal("empty sketch of another geometry must stay an identity")
	}
}

func TestDecimalPlaces(t *testing.T) {
	cases := []struct {
		f    float64
		want int
	}{
		{0.25, 2}, {0.5, 1}, {1e-7, 7}, {3.14159, 5}, {0.1, 1},
	}
	for _, c := range cases {
		if got := decimalPlaces(c.f); got != c.want {
			t.Errorf("decimalPlaces(%v) = %d, want %d", c.f, got, c.want)
		}
	}
}

// TestLatticeReport pins the path spelling and annotation placement of
// a small concrete lattice.
func TestLatticeReport(t *testing.T) {
	set, err := ParseSet([]string{"ranges", "formats", "lengths"})
	if err != nil {
		t.Fatal(err)
	}
	l := set.NewLattice()
	// {"a": 1.5, "tags": ["x", "2024-02-29"]} twice, varying the number.
	for _, v := range []float64{1.5, -2} {
		l.BeginObject()
		l.Key("a")
		l.Num(v)
		l.Key("tags")
		l.BeginArray()
		l.Str("2024-02-29")
		l.Str("1999-12-31")
		l.EndArray(2)
		l.EndObject()
	}
	rep := l.Report()
	if got := rep["$.a"]["minimum"]; got != float64(-2) {
		t.Fatalf("$.a minimum = %v, want -2 (report: %v)", got, rep)
	}
	if got := rep["$.a"]["maximum"]; got != float64(1.5) {
		t.Fatalf("$.a maximum = %v, want 1.5", got)
	}
	if got := rep["$.tags"]["x-observedMaxItems"]; got != int64(2) {
		t.Fatalf("$.tags x-observedMaxItems = %v (%T), want 2", got, got)
	}
	if got := rep["$.tags[]"]["format"]; got != "date" {
		t.Fatalf("$.tags[] format = %v, want date", got)
	}
	if _, ok := rep["$"]; ok {
		t.Fatalf("root has no scalar observations, report: %v", rep["$"])
	}
}

// TestUnionAcrossSets pins cross-configuration merging: the union of
// the monoid sets, commutative in both content and serialized bytes.
func TestUnionAcrossSets(t *testing.T) {
	sa, err := ParseSet([]string{"ranges"})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := ParseSet([]string{"formats"})
	if err != nil {
		t.Fatal(err)
	}
	a := sa.NewLattice()
	a.Num(7)
	b := sb.NewLattice()
	b.Str("user@example.com")

	ab := latticeJSON(t, Union(a, b))
	ba := latticeJSON(t, Union(b, a))
	if ab != ba {
		t.Fatalf("Union is not commutative across sets:\n a∪b %s\n b∪a %s", ab, ba)
	}
	rep := Union(a, b).Report()
	if rep["$"]["minimum"] != float64(7) || rep["$"]["format"] != "email" {
		t.Fatalf("union lost annotations: %v", rep)
	}
	// Union with nil is a clone.
	if got := latticeJSON(t, Union(a, nil)); got != latticeJSON(t, a) {
		t.Fatal("Union(a, nil) != a")
	}
	if Union(nil, nil) != nil {
		t.Fatal("Union(nil, nil) should be nil")
	}
}

// TestLatticeResetAfterError ensures a partially observed value (as
// after a decode error) can be discarded without corrupting the walk.
func TestLatticeResetAfterError(t *testing.T) {
	set, err := ParseSet([]string{"ranges"})
	if err != nil {
		t.Fatal(err)
	}
	l := set.NewLattice()
	l.BeginObject()
	l.Key("a")
	l.Reset()
	l.Num(5)
	if got := l.Report()["$"]["minimum"]; got != float64(5) {
		t.Fatalf("after Reset, the next value must observe at the root; report %v", l.Report())
	}
}
