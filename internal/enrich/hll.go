package enrich

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
)

// hll is a HyperLogLog sketch of the distinct scalar values at a path
// (Flajolet et al. 2007): 2^p one-byte registers, each keeping the
// maximum leading-zero rank seen for its bucket. Register-wise max is
// commutative, associative AND idempotent, so the sketch is immune
// even to duplicated observations — stronger than the engine's
// exactly-once combine guarantee requires (docs/ENRICHMENT.md).
//
// Sketches built with different precisions cannot be combined
// register-wise; merging two non-empty sketches of different p yields
// the absorbing invalid state (annotations vanish rather than lie),
// which keeps Merge total, commutative and associative. The empty
// sketch is an identity regardless of its p.
type hll struct {
	p       int
	reg     []byte
	invalid bool
}

func newHLL(p Params) Monoid {
	prec := p.HLLPrecision
	if prec < 4 {
		prec = 4
	}
	if prec > 16 {
		prec = 16
	}
	return &hll{p: prec, reg: make([]byte, 1<<prec)}
}

type wireHLL struct {
	P       int    `json:"p,omitempty"`
	Regs    string `json:"regs,omitempty"`
	Invalid bool   `json:"invalid,omitempty"`
}

func unmarshalHLL(data []byte, p Params) (Monoid, error) {
	var w wireHLL
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, err
	}
	if w.Invalid {
		return &hll{invalid: true}, nil
	}
	if w.P < 4 || w.P > 16 {
		return nil, fmt.Errorf("enrich: hll precision %d out of range", w.P)
	}
	reg, err := base64.StdEncoding.DecodeString(w.Regs)
	if err != nil {
		return nil, fmt.Errorf("enrich: hll registers: %w", err)
	}
	if len(reg) != 1<<w.P {
		return nil, fmt.Errorf("enrich: hll has %d registers, want %d", len(reg), 1<<w.P)
	}
	return &hll{p: w.P, reg: reg}, nil
}

func (h *hll) observe(hash uint64) {
	if h.invalid {
		return
	}
	idx := hash >> (64 - h.p)
	// Rank of the remaining bits: leading zeros + 1, with a sentinel
	// bit so the all-zero remainder stays in range.
	rank := byte(bits.LeadingZeros64(hash<<h.p|1<<(h.p-1)) + 1)
	if rank > h.reg[idx] {
		h.reg[idx] = rank
	}
}

func (h *hll) Null()         { h.observe(hashNull()) }
func (h *hll) Bool(b bool)   { h.observe(hashBool(b)) }
func (h *hll) Num(f float64) { h.observe(hashNum(f)) }
func (h *hll) Str(s string)  { h.observe(hashStr(s)) }
func (h *hll) ArrayLen(int)  {}

func (h *hll) zero() bool {
	for _, r := range h.reg {
		if r != 0 {
			return false
		}
	}
	return true
}

func (h *hll) Empty() bool { return !h.invalid && h.zero() }

func (h *hll) Clone() Monoid {
	c := &hll{p: h.p, invalid: h.invalid}
	c.reg = append([]byte(nil), h.reg...)
	return c
}

func (h *hll) Merge(other Monoid) {
	o := other.(*hll)
	switch {
	case o.invalid:
		h.invalid = true
		h.reg = nil
	case h.invalid || o.zero():
		// Absorbing state, or merging in an identity: nothing to do.
	case h.zero():
		h.p = o.p
		h.reg = append(h.reg[:0], o.reg...)
	case h.p != o.p:
		h.invalid = true
		h.reg = nil
	default:
		for i, r := range o.reg {
			if r > h.reg[i] {
				h.reg[i] = r
			}
		}
	}
}

// estimate is the standard HLL estimator with the small-range
// (linear-counting) correction. It is a pure function of the
// registers, so merge-tree invariance of the registers carries over.
func (h *hll) estimate() int64 {
	m := float64(len(h.reg))
	var sum float64
	zeros := 0
	for _, r := range h.reg {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	var alpha float64
	switch len(h.reg) {
	case 16:
		alpha = 0.673
	case 32:
		alpha = 0.697
	case 64:
		alpha = 0.709
	default:
		alpha = 0.7213 / (1 + 1.079/m)
	}
	est := alpha * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros))
	}
	return int64(math.Round(est))
}

func (h *hll) Fold() map[string]any {
	if h.invalid || h.zero() {
		return nil
	}
	return map[string]any{"x-distinctValues": h.estimate()}
}

func (h *hll) MarshalState() ([]byte, error) {
	if h.invalid {
		return json.Marshal(wireHLL{Invalid: true})
	}
	return json.Marshal(wireHLL{P: h.p, Regs: base64.StdEncoding.EncodeToString(h.reg)})
}
