package enrich

import "encoding/json"

// lengths tracks the element counts of the arrays at a path: count of
// arrays, min/max length, and the integer sum of lengths (divided once
// at Fold, the repo-wide discipline that keeps averages bit-identical
// across merge trees).
type lengths struct {
	Count int64 `json:"count"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	Sum   int64 `json:"sum"`
}

func newLengths(Params) Monoid { return &lengths{} }

func unmarshalLengths(data []byte, _ Params) (Monoid, error) {
	l := &lengths{}
	if err := json.Unmarshal(data, l); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *lengths) Null()         {}
func (l *lengths) Bool(bool)     {}
func (l *lengths) Num(float64)   {}
func (l *lengths) Str(string)    {}
func (l *lengths) Empty() bool   { return l.Count == 0 }
func (l *lengths) Clone() Monoid { c := *l; return &c }

func (l *lengths) ArrayLen(n int) {
	v := int64(n)
	if l.Count == 0 || v < l.Min {
		l.Min = v
	}
	if v > l.Max {
		l.Max = v
	}
	l.Count++
	l.Sum += v
}

func (l *lengths) Merge(other Monoid) {
	o := other.(*lengths)
	if o.Count == 0 {
		return
	}
	if l.Count == 0 || o.Min < l.Min {
		l.Min = o.Min
	}
	if o.Max > l.Max {
		l.Max = o.Max
	}
	l.Count += o.Count
	l.Sum += o.Sum
}

func (l *lengths) Fold() map[string]any {
	if l.Count == 0 {
		return nil
	}
	return map[string]any{
		"x-observedMinItems": l.Min,
		"x-observedMaxItems": l.Max,
		"x-observedAvgItems": float64(l.Sum) / float64(l.Count),
	}
}

func (l *lengths) MarshalState() ([]byte, error) { return json.Marshal(l) }
