// Package enrich computes value-level enrichment statistics alongside
// structural inference, in the same single pass: numeric ranges,
// approximate distinct counts (HyperLogLog), Bloom-filter value
// sketches, string format detection, array-length and number-precision
// stats. The design follows JSONoid ("Monoid-based Enrichment for
// Configurable and Scalable Data-Driven Schema Discovery", PAPERS.md):
// every statistic is a commutative monoid — an empty identity plus an
// associative, commutative Merge — so enrichment distributes over any
// chunking, merge tree, worker count and retry schedule exactly like
// the fusion algebra it rides on (the paper's Theorems 5.4 and 5.5).
//
// The unit of state is the Lattice: a tree of nodes mirroring the
// paths of the observed values, each node carrying one state per
// enabled monoid. Lattices merge node-wise and state-wise, serialize
// deterministically, and surface as JSON Schema annotations
// (internal/jsonschema) and flat path reports.
//
// Every monoid must pass the conformance harness in
// internal/enrich/monoidtest — identity, commutativity, associativity
// and serialization round-trip over random merge trees — which is the
// same property suite the pipeline accumulators and obs snapshots run.
// docs/ENRICHMENT.md catalogues the monoids and the recipe for adding
// one.
package enrich

import (
	"fmt"
	"sort"
	"strings"
)

// A Monoid is one enrichment statistic at one path: observation hooks
// (called during decoding; each concrete monoid reacts to the kinds it
// cares about and ignores the rest), an associative + commutative
// Merge whose identity is the freshly constructed state, and a
// deterministic serialization. Merge must never mutate its argument —
// the monoidpure analyzer checks this interprocedurally for every
// Merge in this package, with zero suppressions.
type Monoid interface {
	// Observation hooks, one per scalar kind plus the array-length
	// event (fired once per array with its element count).
	Null()
	Bool(b bool)
	Num(f float64)
	Str(s string)
	ArrayLen(n int)

	// Empty reports whether the state equals the identity. Empty
	// states are omitted from serialization and annotations.
	Empty() bool
	// Clone returns an independent deep copy.
	Clone() Monoid
	// Merge absorbs other (same concrete type) into the receiver.
	// Associative and commutative; must not mutate other.
	Merge(other Monoid)
	// Fold renders the final annotation key/value pairs (JSON Schema
	// keywords or x- extensions); nil when there is nothing to report.
	Fold() map[string]any
	// MarshalState serializes the state as JSON. The bytes are a pure
	// function of the abstract state (map keys sort, floats use the
	// shortest round-trip form), so byte-identity across merge trees
	// holds end to end.
	MarshalState() ([]byte, error)
}

// Kind says which schema nodes a monoid's annotations attach to, so
// the JSON Schema exporter can place e.g. minimum/maximum on number
// schemas and format on string schemas.
type Kind int

const (
	// KindValue annotations describe every value at the path (distinct
	// counts, Bloom membership) and attach to the path's schema node
	// itself — the union node when the path has mixed types.
	KindValue Kind = iota
	// KindNumber, KindString and KindArray annotations attach to the
	// number, string and array alternative of the path's schema.
	KindNumber
	KindString
	KindArray
)

// Def describes one monoid in the catalogue: its flag name, the node
// kind its annotations attach to, a constructor and a deserializer.
type Def struct {
	Name      string
	Kind      Kind
	New       func(p Params) Monoid
	Unmarshal func(data []byte, p Params) (Monoid, error)
}

// Params holds the accuracy/size knobs of the sketch monoids (see
// docs/ENRICHMENT.md). Sketches record their own parameters in their
// serialized state, so lattices built with different knobs still merge
// deterministically (mismatched sketches collapse to the absorbing
// invalid state rather than silently combining incompatible registers).
type Params struct {
	// HLLPrecision is the HyperLogLog register-index width p; the
	// sketch keeps 2^p one-byte registers (p=8 → 256 B, ~6.5% relative
	// error; p=12 → 4 KiB, ~1.6%).
	HLLPrecision int `json:"hll_precision"`
	// BloomBits and BloomHashes size the Bloom filter (m bits, k
	// hashes per value).
	BloomBits   int `json:"bloom_bits"`
	BloomHashes int `json:"bloom_hashes"`
}

// DefaultParams are the knobs used when none are given.
func DefaultParams() Params {
	return Params{HLLPrecision: 8, BloomBits: 1024, BloomHashes: 4}
}

// merge combines two parameter sets field-wise by maximum — the only
// combination that is commutative and associative, so lattice unions
// stay order-independent.
func (p Params) merge(q Params) Params {
	return Params{
		HLLPrecision: max(p.HLLPrecision, q.HLLPrecision),
		BloomBits:    max(p.BloomBits, q.BloomBits),
		BloomHashes:  max(p.BloomHashes, q.BloomHashes),
	}
}

// catalogue lists every shipped monoid in canonical order. The order
// is the states-slice layout of every node, so it must be append-only
// within a run; across runs the serialized form is keyed by name.
func catalogue() []Def {
	return []Def{
		{Name: "ranges", Kind: KindNumber, New: newRanges, Unmarshal: unmarshalRanges},
		{Name: "hll", Kind: KindValue, New: newHLL, Unmarshal: unmarshalHLL},
		{Name: "bloom", Kind: KindValue, New: newBloom, Unmarshal: unmarshalBloom},
		{Name: "formats", Kind: KindString, New: newFormats, Unmarshal: unmarshalFormats},
		{Name: "lengths", Kind: KindArray, New: newLengths, Unmarshal: unmarshalLengths},
		{Name: "numprec", Kind: KindNumber, New: newNumPrec, Unmarshal: unmarshalNumPrec},
	}
}

// Names returns the catalogue's monoid names in canonical order.
func Names() []string {
	defs := catalogue()
	names := make([]string, len(defs))
	for i, d := range defs {
		names[i] = d.Name
	}
	return names
}

// A Set is a validated selection of monoids plus the sketch knobs: the
// run-wide configuration every Lattice of one inference run shares.
type Set struct {
	defs   []Def
	params Params
}

// ParseSet validates a list of monoid names (each entry may itself be
// a comma-separated list, matching flag syntax) into a Set with
// default knobs. "all" selects the whole catalogue. Duplicates
// collapse; unknown names error.
func ParseSet(names []string) (*Set, error) {
	return ParseSetParams(names, DefaultParams())
}

// ParseSetParams is ParseSet with explicit sketch knobs.
func ParseSetParams(names []string, p Params) (*Set, error) {
	want := make(map[string]bool)
	for _, entry := range names {
		for _, name := range strings.Split(entry, ",") {
			name = strings.TrimSpace(strings.ToLower(name))
			if name == "" {
				continue
			}
			if name == "all" {
				for _, n := range Names() {
					want[n] = true
				}
				continue
			}
			want[name] = true
		}
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("enrich: empty monoid selection")
	}
	var defs []Def
	for _, d := range catalogue() {
		if want[d.Name] {
			defs = append(defs, d)
			delete(want, d.Name)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for name := range want {
			unknown = append(unknown, name)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("enrich: unknown monoid(s) %s (known: %s, or all)",
			strings.Join(unknown, ", "), strings.Join(Names(), ", "))
	}
	return &Set{defs: defs, params: p}, nil
}

// Names returns the enabled monoid names in canonical order.
func (s *Set) Names() []string {
	names := make([]string, len(s.defs))
	for i, d := range s.defs {
		names[i] = d.Name
	}
	return names
}

// Params returns the sketch knobs.
func (s *Set) Params() Params { return s.params }

// equalShape reports whether two sets enable the same monoids with the
// same knobs, so their lattices merge index-aligned.
func (s *Set) equalShape(o *Set) bool {
	if s == o {
		return true
	}
	if len(s.defs) != len(o.defs) || s.params != o.params {
		return false
	}
	for i := range s.defs {
		if s.defs[i].Name != o.defs[i].Name {
			return false
		}
	}
	return true
}

// unionSet merges two configurations: the union of the enabled
// monoids in canonical order, knobs combined field-wise by maximum.
func unionSet(a, b *Set) *Set {
	if a.equalShape(b) {
		return a
	}
	names := append(a.Names(), b.Names()...)
	merged, err := ParseSetParams(names, a.params.merge(b.params))
	if err != nil {
		// Unreachable: both inputs hold catalogue names only.
		panic(err)
	}
	return merged
}

// index returns the position of a monoid name in the set, or -1.
func (s *Set) index(name string) int {
	for i, d := range s.defs {
		if d.Name == name {
			return i
		}
	}
	return -1
}
