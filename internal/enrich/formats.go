package enrich

import (
	"encoding/json"
	"net/url"
	"strings"
	"time"
)

// formatNames lists the detected string formats in priority order:
// each observed string is counted under the FIRST format it matches
// (date-time before date matters: an RFC 3339 timestamp starts with a
// full date). The names are JSON Schema `format` keyword values.
var formatNames = []string{"date-time", "date", "uuid", "uri", "email"}

// formats counts, per path, how many strings match each well-known
// format. Counter addition is the monoid; the `format` annotation is
// asserted only when every observed string matched one single format.
type formats struct {
	Total  int64   `json:"total"`
	Counts []int64 `json:"counts"` // parallel to formatNames
}

func newFormats(Params) Monoid {
	return &formats{Counts: make([]int64, len(formatNames))}
}

func unmarshalFormats(data []byte, _ Params) (Monoid, error) {
	f := &formats{}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, err
	}
	// Tolerate catalogues of other sizes defensively: realign onto the
	// current one (extra counts cannot be attributed and are dropped).
	if len(f.Counts) != len(formatNames) {
		counts := make([]int64, len(formatNames))
		copy(counts, f.Counts)
		f.Counts = counts
	}
	return f, nil
}

func (f *formats) Null()        {}
func (f *formats) Bool(bool)    {}
func (f *formats) Num(float64)  {}
func (f *formats) ArrayLen(int) {}

func (f *formats) Str(s string) {
	f.Total++
	if i := detectFormat(s); i >= 0 {
		f.Counts[i]++
	}
}

func (f *formats) Empty() bool { return f.Total == 0 }

func (f *formats) Clone() Monoid {
	c := &formats{Total: f.Total}
	c.Counts = append([]int64(nil), f.Counts...)
	return c
}

func (f *formats) Merge(other Monoid) {
	o := other.(*formats)
	f.Total += o.Total
	for i, n := range o.Counts {
		f.Counts[i] += n
	}
}

func (f *formats) Fold() map[string]any {
	if f.Total == 0 {
		return nil
	}
	counts := make(map[string]any)
	matched := -1
	single := true
	for i, n := range f.Counts {
		if n == 0 {
			continue
		}
		counts[formatNames[i]] = n
		if matched >= 0 {
			single = false
		}
		matched = i
	}
	if len(counts) == 0 {
		return nil
	}
	out := map[string]any{"x-stringFormats": counts}
	// Assert the format keyword only on unanimous evidence: one format,
	// matched by every observed string.
	if single && f.Counts[matched] == f.Total {
		out["format"] = formatNames[matched]
	}
	return out
}

func (f *formats) MarshalState() ([]byte, error) { return json.Marshal(f) }

// detectFormat returns the index into formatNames of the first format
// s matches, or -1. Detection is strict where cheap (real calendar
// validation for dates via time.Parse) and conservative where a full
// grammar would be disproportionate (email).
func detectFormat(s string) int {
	for i, name := range formatNames {
		var ok bool
		switch name {
		case "date-time":
			ok = isDateTime(s)
		case "date":
			ok = isDate(s)
		case "uuid":
			ok = isUUID(s)
		case "uri":
			ok = isURI(s)
		case "email":
			ok = isEmail(s)
		}
		if ok {
			return i
		}
	}
	return -1
}

// isDate matches full-date of RFC 3339 (YYYY-MM-DD), calendar-valid.
func isDate(s string) bool {
	if len(s) != 10 {
		return false
	}
	_, err := time.Parse("2006-01-02", s)
	return err == nil
}

// isDateTime matches date-time of RFC 3339.
func isDateTime(s string) bool {
	if len(s) < len("2006-01-02T15:04:05Z") {
		return false
	}
	_, err := time.Parse(time.RFC3339, s)
	return err == nil
}

// isUUID matches the 8-4-4-4-12 hexadecimal form, any case.
func isUUID(s string) bool {
	if len(s) != 36 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch i {
		case 8, 13, 18, 23:
			if c != '-' {
				return false
			}
		default:
			if !isHex(c) {
				return false
			}
		}
	}
	return true
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// isURI matches absolute http(s) URLs with a host — the kind that
// shows up in data feeds — not the full RFC 3986 grammar.
func isURI(s string) bool {
	if !strings.HasPrefix(s, "http://") && !strings.HasPrefix(s, "https://") {
		return false
	}
	u, err := url.Parse(s)
	return err == nil && u.Host != ""
}

// isEmail is the conservative local@domain.tld shape check: exactly
// one '@', non-empty local part, a dot inside the domain, no spaces.
func isEmail(s string) bool {
	at := strings.IndexByte(s, '@')
	if at <= 0 || at != strings.LastIndexByte(s, '@') {
		return false
	}
	local, domain := s[:at], s[at+1:]
	if local == "" || domain == "" || strings.ContainsAny(s, " \t") {
		return false
	}
	dot := strings.IndexByte(domain, '.')
	return dot > 0 && dot < len(domain)-1 && !strings.HasPrefix(domain, ".")
}
