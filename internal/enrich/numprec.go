package enrich

import (
	"encoding/json"
	"math"
	"strconv"
	"strings"
)

// numPrec tracks number-precision statistics at a path: how many of
// the observed numbers were integral versus fractional, and the
// largest number of decimal places any of them needed (measured on the
// shortest decimal rendering of the parsed float64, so "1.50" and
// "1.5" agree — the lexer normalizes literals to their value).
type numPrec struct {
	Ints   int64 `json:"ints"`
	Fracs  int64 `json:"fracs"`
	MaxDec int   `json:"max_dec"`
}

func newNumPrec(Params) Monoid { return &numPrec{} }

func unmarshalNumPrec(data []byte, _ Params) (Monoid, error) {
	n := &numPrec{}
	if err := json.Unmarshal(data, n); err != nil {
		return nil, err
	}
	return n, nil
}

func (n *numPrec) Null()        {}
func (n *numPrec) Bool(bool)    {}
func (n *numPrec) Str(string)   {}
func (n *numPrec) ArrayLen(int) {}
func (n *numPrec) Empty() bool  { return n.Ints == 0 && n.Fracs == 0 }
func (n *numPrec) Clone() Monoid {
	c := *n
	return &c
}

func (n *numPrec) Num(f float64) {
	if math.Trunc(f) == f {
		n.Ints++
		return
	}
	n.Fracs++
	if d := decimalPlaces(f); d > n.MaxDec {
		n.MaxDec = d
	}
}

func (n *numPrec) Merge(other Monoid) {
	o := other.(*numPrec)
	n.Ints += o.Ints
	n.Fracs += o.Fracs
	if o.MaxDec > n.MaxDec {
		n.MaxDec = o.MaxDec
	}
}

func (n *numPrec) Fold() map[string]any {
	total := n.Ints + n.Fracs
	if total == 0 {
		return nil
	}
	out := map[string]any{"x-integerOnly": n.Fracs == 0}
	if n.Fracs > 0 {
		out["x-maxDecimalPlaces"] = n.MaxDec
	}
	return out
}

func (n *numPrec) MarshalState() ([]byte, error) { return json.Marshal(n) }

// decimalPlaces counts the decimal digits after the point in the
// positional spelling of f's shortest round-trip representation:
// 0.25 → 2, 1e-7 → 7, 1.234e+20 → 0.
func decimalPlaces(f float64) int {
	s := strconv.FormatFloat(f, 'e', -1, 64) // d.dddde±dd
	mant := s
	exp := 0
	if i := strings.IndexByte(s, 'e'); i >= 0 {
		mant = s[:i]
		exp, _ = strconv.Atoi(s[i+1:])
	}
	frac := 0
	if i := strings.IndexByte(mant, '.'); i >= 0 {
		frac = len(mant) - i - 1
	}
	if places := frac - exp; places > 0 {
		return places
	}
	return 0
}
