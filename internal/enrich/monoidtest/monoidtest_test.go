package monoidtest

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"
)

// counter is the simplest commutative monoid — integer addition — used
// to sanity-check the harness itself, including the serialization laws.
type counter struct{ n int64 }

func TestHarnessOnCounter(t *testing.T) {
	Run(t, Subject{
		Name:  "counter",
		Empty: func() any { return &counter{} },
		Rand:  func(r *rand.Rand) any { return &counter{n: int64(r.Intn(1000))} },
		Merge: func(a, b any) any {
			a.(*counter).n += b.(*counter).n
			return a
		},
		Fingerprint: func(x any) string { return fmt.Sprint(x.(*counter).n) },
		Marshal:     func(x any) ([]byte, error) { return []byte(fmt.Sprint(x.(*counter).n)), nil },
		Unmarshal: func(data []byte) (any, error) {
			n, err := strconv.ParseInt(string(data), 10, 64)
			return &counter{n: n}, err
		},
	})
}

func TestItersFloor(t *testing.T) {
	if got := Iters(10); got < 50 {
		t.Fatalf("Iters(10) = %d, want the 50-iteration conformance floor", got)
	}
	if got := Iters(200); got != 200 && *itersFlag == 0 {
		// An explicit -monoid.iters or MONOID_ITERS may override; only
		// pin the default path.
		t.Logf("Iters(200) = %d (overridden by flag or env)", got)
	}
}
