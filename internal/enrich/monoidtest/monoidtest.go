// Package monoidtest is the shared conformance harness for every
// commutative monoid in the repository: the enrichment monoids and the
// Lattice (internal/enrich), the pipeline accumulators
// (internal/pipeline), obs metric snapshots (internal/obs) and the
// intern multiset (internal/intern) all run the same property suite —
// identity, commutativity, associativity, random merge trees versus
// the sequential fold, non-mutation of the second operand, and (when
// the subject serializes) byte-stable serialization round-trips.
//
// A Subject describes one monoid through closures over an opaque
// element type, so the harness needs no generics and no knowledge of
// the concrete state. Because Merge is allowed to mutate its first
// argument (the in-place style the pipeline uses), the harness never
// reuses an element across calls: elements are regenerated
// deterministically from their seed instead of cloned.
//
// The iteration count is tunable for CI soak runs: -monoid.iters on
// any test binary that imports this package, or the MONOID_ITERS
// environment variable (flag wins). Every law runs at least 50
// iterations regardless.
package monoidtest

import (
	"flag"
	"math/rand"
	"os"
	"strconv"
	"testing"
)

// Subject describes one monoid under test.
type Subject struct {
	// Name labels the subtests.
	Name string
	// Empty returns the identity element.
	Empty func() any
	// Rand returns a pseudo-random element drawn from r. It must be a
	// pure function of the reads from r, so the harness can regenerate
	// an equal element from the same seed.
	Rand func(r *rand.Rand) any
	// Merge combines two elements and returns the result. It may
	// mutate and return a (in-place merge), but must never mutate b.
	Merge func(a, b any) any
	// Fingerprint renders an element's abstract state as a string:
	// two elements are equal iff their fingerprints are.
	Fingerprint func(x any) string
	// Marshal and Unmarshal, when both set, enable the serialization
	// round-trip laws.
	Marshal   func(x any) ([]byte, error)
	Unmarshal func(data []byte) (any, error)
}

var itersFlag = flag.Int("monoid.iters", 0,
	"iterations per monoid law (0 = MONOID_ITERS env or the built-in default)")

// Iters resolves the per-law iteration count: the -monoid.iters flag,
// else the MONOID_ITERS environment variable, else def; never below
// 50, the conformance floor.
func Iters(def int) int {
	n := def
	if v := os.Getenv("MONOID_ITERS"); v != "" {
		if env, err := strconv.Atoi(v); err == nil && env > 0 {
			n = env
		}
	}
	if *itersFlag > 0 {
		n = *itersFlag
	}
	if n < 50 {
		n = 50
	}
	return n
}

// Run property-checks the monoid laws on s.
func Run(t *testing.T, s Subject) {
	t.Helper()
	iters := Iters(60)
	t.Run(s.Name, func(t *testing.T) {
		t.Run("Identity", func(t *testing.T) { identity(t, s, iters) })
		t.Run("Commutativity", func(t *testing.T) { commutativity(t, s, iters) })
		t.Run("Associativity", func(t *testing.T) { associativity(t, s, iters) })
		t.Run("MergeTrees", func(t *testing.T) { mergeTrees(t, s, iters) })
		t.Run("NoMutateSecond", func(t *testing.T) { noMutateSecond(t, s, iters) })
		if s.Marshal != nil && s.Unmarshal != nil {
			t.Run("RoundTrip", func(t *testing.T) { roundTrip(t, s, iters) })
		}
	})
}

// gen deterministically regenerates the element of a seed: the
// harness's substitute for cloning, safe against in-place merges.
func (s Subject) gen(seed int64) any {
	return s.Rand(rand.New(rand.NewSource(seed)))
}

func identity(t *testing.T, s Subject, iters int) {
	for i := 0; i < iters; i++ {
		seed := int64(1000 + i)
		want := s.Fingerprint(s.gen(seed))
		if got := s.Fingerprint(s.Merge(s.Empty(), s.gen(seed))); got != want {
			t.Fatalf("seed %d: Merge(e, x) != x\n got %s\nwant %s", seed, got, want)
		}
		if got := s.Fingerprint(s.Merge(s.gen(seed), s.Empty())); got != want {
			t.Fatalf("seed %d: Merge(x, e) != x\n got %s\nwant %s", seed, got, want)
		}
	}
	// Two empties merge to an empty.
	want := s.Fingerprint(s.Empty())
	if got := s.Fingerprint(s.Merge(s.Empty(), s.Empty())); got != want {
		t.Fatalf("Merge(e, e) != e\n got %s\nwant %s", got, want)
	}
}

func commutativity(t *testing.T, s Subject, iters int) {
	for i := 0; i < iters; i++ {
		a, b := int64(2000+2*i), int64(2001+2*i)
		ab := s.Fingerprint(s.Merge(s.gen(a), s.gen(b)))
		ba := s.Fingerprint(s.Merge(s.gen(b), s.gen(a)))
		if ab != ba {
			t.Fatalf("seeds %d,%d: Merge(a, b) != Merge(b, a)\n a·b %s\n b·a %s", a, b, ab, ba)
		}
	}
}

func associativity(t *testing.T, s Subject, iters int) {
	for i := 0; i < iters; i++ {
		a, b, c := int64(3000+3*i), int64(3001+3*i), int64(3002+3*i)
		left := s.Fingerprint(s.Merge(s.Merge(s.gen(a), s.gen(b)), s.gen(c)))
		right := s.Fingerprint(s.Merge(s.gen(a), s.Merge(s.gen(b), s.gen(c))))
		if left != right {
			t.Fatalf("seeds %d,%d,%d: (a·b)·c != a·(b·c)\n left %s\nright %s", a, b, c, left, right)
		}
	}
}

// mergeTrees folds n elements through a random binary merge tree and
// checks the result against the sequential left fold — the law the
// engine's arbitrary combine order rests on.
func mergeTrees(t *testing.T, s Subject, iters int) {
	rng := rand.New(rand.NewSource(20170321))
	for trial := 0; trial < iters; trial++ {
		n := 2 + rng.Intn(7)
		base := int64(4000 + 100*trial)

		seq := s.Empty()
		for j := 0; j < n; j++ {
			seq = s.Merge(seq, s.gen(base+int64(j)))
		}
		want := s.Fingerprint(seq)

		// Random tree: repeatedly merge two random groups until one
		// remains (swap-delete keeps the pick uniform).
		groups := make([]any, n)
		for j := 0; j < n; j++ {
			groups[j] = s.gen(base + int64(j))
		}
		for len(groups) > 1 {
			i := rng.Intn(len(groups))
			j := rng.Intn(len(groups) - 1)
			if j >= i {
				j++
			}
			groups[i] = s.Merge(groups[i], groups[j])
			groups[j] = groups[len(groups)-1]
			groups = groups[:len(groups)-1]
		}
		if got := s.Fingerprint(groups[0]); got != want {
			t.Fatalf("trial %d (n=%d): random merge tree != sequential fold\n got %s\nwant %s",
				trial, n, got, want)
		}
	}
}

func noMutateSecond(t *testing.T, s Subject, iters int) {
	for i := 0; i < iters; i++ {
		a, b := int64(5000+2*i), int64(5001+2*i)
		x := s.gen(b)
		before := s.Fingerprint(x)
		s.Merge(s.gen(a), x)
		if after := s.Fingerprint(x); after != before {
			t.Fatalf("seeds %d,%d: Merge mutated its second operand\nbefore %s\n after %s",
				a, b, before, after)
		}
	}
}

func roundTrip(t *testing.T, s Subject, iters int) {
	check := func(label string, x any, fresh func() any) {
		t.Helper()
		want := s.Fingerprint(x)
		data, err := s.Marshal(x)
		if err != nil {
			t.Fatalf("%s: Marshal: %v", label, err)
		}
		y, err := s.Unmarshal(data)
		if err != nil {
			t.Fatalf("%s: Unmarshal: %v", label, err)
		}
		if got := s.Fingerprint(y); got != want {
			t.Fatalf("%s: round-trip changed the state\n got %s\nwant %s", label, got, want)
		}
		again, err := s.Marshal(y)
		if err != nil {
			t.Fatalf("%s: re-Marshal: %v", label, err)
		}
		if string(again) != string(data) {
			t.Fatalf("%s: serialization is not byte-stable\nfirst  %s\nsecond %s", label, data, again)
		}
		// Merging after a round-trip equals merging the originals.
		if fresh != nil {
			direct := s.Fingerprint(s.Merge(fresh(), x))
			viaWire := s.Fingerprint(s.Merge(fresh(), y))
			if direct != viaWire {
				t.Fatalf("%s: merge after round-trip diverged\n direct %s\nviaWire %s", label, direct, viaWire)
			}
		}
	}
	check("empty", s.Empty(), nil)
	for i := 0; i < iters; i++ {
		seed := int64(6000 + 2*i)
		other := int64(6001 + 2*i)
		check("single", s.gen(seed), func() any { return s.gen(other) })
		merged := s.Merge(s.gen(seed), s.gen(other))
		check("merged", merged, func() any { return s.gen(seed) })
	}
}
