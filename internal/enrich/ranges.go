package enrich

import "encoding/json"

// ranges tracks the observed minimum and maximum of the numbers at a
// path. Merge is min/max combination — commutative, associative,
// idempotent — guarded by the observation count so the zero state is a
// true identity.
type ranges struct {
	Count int64   `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

func newRanges(Params) Monoid { return &ranges{} }

func unmarshalRanges(data []byte, _ Params) (Monoid, error) {
	r := &ranges{}
	if err := json.Unmarshal(data, r); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *ranges) Null()         {}
func (r *ranges) Bool(bool)     {}
func (r *ranges) Str(string)    {}
func (r *ranges) ArrayLen(int)  {}
func (r *ranges) Empty() bool   { return r.Count == 0 }
func (r *ranges) Clone() Monoid { c := *r; return &c }

func (r *ranges) Num(f float64) {
	// Normalize -0 to 0: the two compare equal, so which one a min/max
	// keeps would otherwise depend on merge order and break
	// byte-identity across merge trees.
	if f == 0 {
		f = 0
	}
	if r.Count == 0 || f < r.Min {
		r.Min = f
	}
	if r.Count == 0 || f > r.Max {
		r.Max = f
	}
	r.Count++
}

func (r *ranges) Merge(other Monoid) {
	o := other.(*ranges)
	if o.Count == 0 {
		return
	}
	if r.Count == 0 || o.Min < r.Min {
		r.Min = o.Min
	}
	if r.Count == 0 || o.Max > r.Max {
		r.Max = o.Max
	}
	r.Count += o.Count
}

func (r *ranges) Fold() map[string]any {
	if r.Count == 0 {
		return nil
	}
	return map[string]any{"minimum": r.Min, "maximum": r.Max}
}

func (r *ranges) MarshalState() ([]byte, error) { return json.Marshal(r) }
