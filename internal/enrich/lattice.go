package enrich

import (
	"encoding/json"
	"fmt"
	"sort"
)

// A Lattice is the enrichment state of one (partial) dataset: a tree
// of nodes mirroring the value paths seen so far, each node carrying
// one state per enabled monoid. A fresh lattice is the identity;
// Merge combines two lattices node-wise and state-wise, so lattices
// form a commutative monoid themselves (property-tested through the
// same conformance harness as the individual monoids).
//
// During decoding a Lattice doubles as the stream observer (it
// implements internal/infer.Observer structurally): scalar events land
// on the node of the current path, array elements collapse onto one
// "[]" child — the same collapse fusion applies to array types — and
// tuple positions therefore share a node.
type Lattice struct {
	set  *Set
	root *node

	// stack is the observer's walk state: one frame per open composite
	// value. Transient — ignored by Merge, Clone and serialization.
	stack []frame
}

type frame struct {
	n       *node
	key     string
	inArray bool
}

// node carries the per-monoid states of one path plus its children.
type node struct {
	states []Monoid
	fields map[string]*node
	elem   *node
}

// NewLattice returns the empty lattice of the set's configuration.
func (s *Set) NewLattice() *Lattice {
	return &Lattice{set: s, root: s.newNode()}
}

func (s *Set) newNode() *node {
	n := &node{states: make([]Monoid, len(s.defs))}
	for i, d := range s.defs {
		n.states[i] = d.New(s.params)
	}
	return n
}

// Set returns the lattice's configuration.
func (l *Lattice) Set() *Set { return l.set }

// cur resolves the node of the value about to be observed: the root at
// the top level, the keyed child inside an object, the shared element
// child inside an array. Missing nodes are created on first visit.
func (l *Lattice) cur() *node {
	if len(l.stack) == 0 {
		return l.root
	}
	f := &l.stack[len(l.stack)-1]
	if f.inArray {
		if f.n.elem == nil {
			f.n.elem = l.set.newNode()
		}
		return f.n.elem
	}
	child := f.n.fields[f.key]
	if child == nil {
		child = l.set.newNode()
		if f.n.fields == nil {
			f.n.fields = make(map[string]*node)
		}
		f.n.fields[f.key] = child
	}
	return child
}

// The observer hooks (see internal/infer.Observer). Scalars dispatch
// to every state of the current node; composites push/pop walk frames,
// and closing an array fires the length event on the array's own node.

func (l *Lattice) Null() {
	for _, s := range l.cur().states {
		s.Null()
	}
}

func (l *Lattice) Bool(b bool) {
	for _, s := range l.cur().states {
		s.Bool(b)
	}
}

func (l *Lattice) Num(f float64) {
	for _, s := range l.cur().states {
		s.Num(f)
	}
}

func (l *Lattice) Str(s string) {
	for _, st := range l.cur().states {
		st.Str(s)
	}
}

func (l *Lattice) BeginObject() {
	l.stack = append(l.stack, frame{n: l.cur()})
}

func (l *Lattice) Key(k string) {
	l.stack[len(l.stack)-1].key = k
}

func (l *Lattice) EndObject() {
	l.stack = l.stack[:len(l.stack)-1]
}

func (l *Lattice) BeginArray() {
	l.stack = append(l.stack, frame{n: l.cur(), inArray: true})
}

func (l *Lattice) EndArray(count int) {
	f := l.stack[len(l.stack)-1]
	l.stack = l.stack[:len(l.stack)-1]
	for _, s := range f.n.states {
		s.ArrayLen(count)
	}
}

// Reset discards a partially observed value's walk state (after a
// decode error the observer may hold open frames).
func (l *Lattice) Reset() { l.stack = l.stack[:0] }

// Merge absorbs other into the receiver without mutating other. Both
// lattices must come from the same Set — the shape every accumulator
// of one run shares; use Union to combine lattices across runs.
func (l *Lattice) Merge(other *Lattice) {
	if other == nil {
		return
	}
	l.root.merge(other.root)
}

func (n *node) merge(o *node) {
	for i := range n.states {
		n.states[i].Merge(o.states[i])
	}
	for k, oc := range o.fields {
		if mc, ok := n.fields[k]; ok {
			mc.merge(oc)
		} else {
			if n.fields == nil {
				n.fields = make(map[string]*node)
			}
			n.fields[k] = oc.clone()
		}
	}
	if o.elem != nil {
		if n.elem == nil {
			n.elem = o.elem.clone()
		} else {
			n.elem.merge(o.elem)
		}
	}
}

// Clone returns an independent deep copy (walk state excluded).
func (l *Lattice) Clone() *Lattice {
	if l == nil {
		return nil
	}
	return &Lattice{set: l.set, root: l.root.clone()}
}

func (n *node) clone() *node {
	c := &node{states: make([]Monoid, len(n.states))}
	for i, s := range n.states {
		c.states[i] = s.Clone()
	}
	if n.fields != nil {
		c.fields = make(map[string]*node, len(n.fields))
		for k, child := range n.fields {
			c.fields[k] = child.clone()
		}
	}
	if n.elem != nil {
		c.elem = n.elem.clone()
	}
	return c
}

// Union combines two lattices purely: neither argument is mutated, nil
// is the identity. Lattices of different configurations combine onto
// the union of their monoid sets (knobs merged field-wise by maximum;
// sketches of mismatched geometry collapse to their absorbing invalid
// state — see hll.go), so cross-run merging through Repository
// snapshots stays total and deterministic.
func Union(a, b *Lattice) *Lattice {
	if a == nil {
		return b.Clone()
	}
	if b == nil {
		return a.Clone()
	}
	if a.set.equalShape(b.set) {
		out := a.Clone()
		out.Merge(b)
		return out
	}
	set := unionSet(a.set, b.set)
	out := set.NewLattice()
	out.root.absorb(set, a.root, remapIndex(set, a.set))
	out.root.absorb(set, b.root, remapIndex(set, b.set))
	return out
}

// remapIndex maps each def index of the union set to the matching
// index in from (-1 when from lacks the monoid).
func remapIndex(union, from *Set) []int {
	idx := make([]int, len(union.defs))
	for i, d := range union.defs {
		idx[i] = from.index(d.Name)
	}
	return idx
}

// absorb merges o into n, translating o's state layout through the
// union-set index mapping; fresh nodes come from the union set.
func (n *node) absorb(set *Set, o *node, idx []int) {
	for i, j := range idx {
		if j >= 0 {
			n.states[i].Merge(o.states[j])
		}
	}
	for k, oc := range o.fields {
		mc, ok := n.fields[k]
		if !ok {
			mc = set.newNode()
			if n.fields == nil {
				n.fields = make(map[string]*node)
			}
			n.fields[k] = mc
		}
		mc.absorb(set, oc, idx)
	}
	if o.elem != nil {
		if n.elem == nil {
			n.elem = set.newNode()
		}
		n.elem.absorb(set, o.elem, idx)
	}
}

// Empty reports whether the lattice recorded nothing.
func (l *Lattice) Empty() bool {
	return l == nil || l.root.empty()
}

func (n *node) empty() bool {
	for _, s := range n.states {
		if !s.Empty() {
			return false
		}
	}
	for _, child := range n.fields {
		if !child.empty() {
			return false
		}
	}
	return n.elem == nil || n.elem.empty()
}

// wire format: self-describing (monoid names + knobs), with empty
// states and empty subtrees pruned. encoding/json sorts map keys, so
// the bytes are a pure function of the abstract state.
type wireLattice struct {
	Monoids []string  `json:"monoids"`
	Params  Params    `json:"params"`
	Root    *wireNode `json:"root,omitempty"`
}

type wireNode struct {
	States map[string]json.RawMessage `json:"states,omitempty"`
	Fields map[string]*wireNode       `json:"fields,omitempty"`
	Elem   *wireNode                  `json:"elem,omitempty"`
}

// MarshalJSON serializes the lattice deterministically.
func (l *Lattice) MarshalJSON() ([]byte, error) {
	root, err := l.root.wire(l.set)
	if err != nil {
		return nil, err
	}
	return json.Marshal(wireLattice{Monoids: l.set.Names(), Params: l.set.params, Root: root})
}

func (n *node) wire(s *Set) (*wireNode, error) {
	w := &wireNode{}
	for i, st := range n.states {
		if st.Empty() {
			continue
		}
		data, err := st.MarshalState()
		if err != nil {
			return nil, err
		}
		if w.States == nil {
			w.States = make(map[string]json.RawMessage)
		}
		w.States[s.defs[i].Name] = data
	}
	for k, child := range n.fields {
		cw, err := child.wire(s)
		if err != nil {
			return nil, err
		}
		if cw == nil {
			continue
		}
		if w.Fields == nil {
			w.Fields = make(map[string]*wireNode)
		}
		w.Fields[k] = cw
	}
	if n.elem != nil {
		ew, err := n.elem.wire(s)
		if err != nil {
			return nil, err
		}
		w.Elem = ew
	}
	if w.States == nil && w.Fields == nil && w.Elem == nil {
		return nil, nil
	}
	return w, nil
}

// UnmarshalLattice reconstructs a lattice from MarshalJSON output.
func UnmarshalLattice(data []byte) (*Lattice, error) {
	var w wireLattice
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("enrich: lattice: %w", err)
	}
	set, err := ParseSetParams(w.Monoids, w.Params)
	if err != nil {
		return nil, err
	}
	l := set.NewLattice()
	if w.Root != nil {
		if err := l.root.unwire(set, w.Root); err != nil {
			return nil, err
		}
	}
	return l, nil
}

func (n *node) unwire(s *Set, w *wireNode) error {
	for name, data := range w.States {
		i := s.index(name)
		if i < 0 {
			return fmt.Errorf("enrich: state for unknown monoid %q", name)
		}
		st, err := s.defs[i].Unmarshal(data, s.params)
		if err != nil {
			return err
		}
		n.states[i] = st
	}
	for k, cw := range w.Fields {
		child := s.newNode()
		if err := child.unwire(s, cw); err != nil {
			return err
		}
		if n.fields == nil {
			n.fields = make(map[string]*node)
		}
		n.fields[k] = child
	}
	if w.Elem != nil {
		n.elem = s.newNode()
		return n.elem.unwire(s, w.Elem)
	}
	return nil
}

// Report renders the lattice as a flat path → annotations map, paths
// in the $.field[] spelling of Schema.ExpandPath. Paths with nothing
// to report are omitted.
func (l *Lattice) Report() map[string]map[string]any {
	out := make(map[string]map[string]any)
	if l != nil {
		l.root.report("$", out)
	}
	return out
}

func (n *node) report(path string, out map[string]map[string]any) {
	anns := make(map[string]any)
	for _, s := range n.states {
		for k, v := range s.Fold() {
			anns[k] = v
		}
	}
	if len(anns) > 0 {
		out[path] = anns
	}
	// Children in sorted order: the output map sorts on marshal anyway,
	// but deterministic construction keeps debugger views stable too.
	keys := make([]string, 0, len(n.fields))
	for k := range n.fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		n.fields[k].report(path+"."+k, out)
	}
	if n.elem != nil {
		n.elem.report(path+"[]", out)
	}
}

// MarshalReport serializes Report deterministically; "{}" when the
// lattice is nil or recorded nothing.
func (l *Lattice) MarshalReport() ([]byte, error) {
	return json.Marshal(l.Report())
}

// A Cursor walks the lattice alongside a schema walk (see
// internal/jsonschema): Field and Elem descend, Annotations collects
// the keys that attach to a node of the given kind. The zero Cursor is
// valid everywhere and yields nothing.
type Cursor struct {
	set *Set
	n   *node
}

// Cursor returns the root cursor; usable on a nil lattice.
func (l *Lattice) Cursor() Cursor {
	if l == nil {
		return Cursor{}
	}
	return Cursor{set: l.set, n: l.root}
}

// Field descends into an object field.
func (c Cursor) Field(key string) Cursor {
	if c.n == nil {
		return Cursor{}
	}
	return Cursor{set: c.set, n: c.n.fields[key]}
}

// Elem descends into the shared array-element node.
func (c Cursor) Elem() Cursor {
	if c.n == nil {
		return Cursor{}
	}
	return Cursor{set: c.set, n: c.n.elem}
}

// Annotations returns the annotation keys of the cursor's node that
// attach to schema nodes of kind; nil when there are none.
func (c Cursor) Annotations(kind Kind) map[string]any {
	if c.n == nil {
		return nil
	}
	var out map[string]any
	for i, s := range c.n.states {
		if c.set.defs[i].Kind != kind {
			continue
		}
		for k, v := range s.Fold() {
			if out == nil {
				out = make(map[string]any)
			}
			out[k] = v
		}
	}
	return out
}
