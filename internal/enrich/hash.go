package enrich

import "math"

// The sketch monoids hash values with FNV-1a 64 over a kind-tagged
// byte encoding, finalized with the splitmix64 mixer (the same mixer
// the map-reduce backoff jitter uses) to spread FNV's weak low bits
// across the whole word. Everything is fixed and platform-independent,
// so sketches are byte-identical wherever they are computed.

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// Kind tags keep values of different JSON kinds from colliding: the
// string "1" and the number 1 hash differently.
const (
	tagNull = 0x00
	tagBool = 0x01
	tagNum  = 0x02
	tagStr  = 0x03
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

func fnvUint64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

// mix64 is the splitmix64 finalizer.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func hashNull() uint64 { return mix64(fnvByte(fnvOffset64, tagNull)) }

func hashBool(b bool) uint64 {
	h := fnvByte(fnvOffset64, tagBool)
	if b {
		h = fnvByte(h, 1)
	} else {
		h = fnvByte(h, 0)
	}
	return mix64(h)
}

// hashNum hashes the IEEE 754 bits, with -0 normalized to 0 so the two
// JSON spellings of zero count as one value.
func hashNum(f float64) uint64 {
	if f == 0 {
		f = 0
	}
	return mix64(fnvUint64(fnvByte(fnvOffset64, tagNum), math.Float64bits(f)))
}

func hashStr(s string) uint64 {
	return mix64(fnvString(fnvByte(fnvOffset64, tagStr), s))
}
