package serving

import (
	"container/list"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	jsi "repro"
	"repro/internal/obs"
)

// A tenant is one isolated schema namespace: its own Repository (with
// its own lock and, per ingest run, its own dedup tables), its own
// snapshot file, its own LRU slot. Handlers hold a tenant only between
// acquire and release; the refs count pins it against eviction while
// a request is in flight.
type tenant struct {
	name string
	// repo is swapped wholesale on snapshot restore; atomic so readers
	// need no lock (the Repository itself is concurrency-safe).
	repo atomic.Pointer[jsi.Repository]
	elem *list.Element
	refs int
}

// tenantSet owns every resident tenant plus their spill-to-disk
// lifecycle: at most max repositories stay in memory, and when the cap
// is exceeded the least-recently-used idle tenant is snapshotted to
// dir and dropped — bounded memory under an unbounded tenant
// population. A later request for an evicted tenant reloads its
// snapshot transparently.
//
// All map/LRU state and all snapshot I/O are guarded by one mutex;
// snapshots are one small JSON document per tenant (schemas, not
// data), so the critical sections stay short.
type tenantSet struct {
	dir string
	max int
	reg *obs.Registry

	mu       sync.Mutex
	resident map[string]*tenant
	lru      list.List // front = most recently used; values are *tenant
}

func newTenantSet(dir string, max int, reg *obs.Registry) *tenantSet {
	ts := &tenantSet{dir: dir, max: max, reg: reg, resident: make(map[string]*tenant)}
	ts.lru.Init()
	return ts
}

// maxTenantNameLen bounds tenant names so their hex-encoded snapshot
// file names stay well under every filesystem's limit.
const maxTenantNameLen = 100

// validTenantName rejects names that cannot round-trip through the
// URL path and the snapshot directory.
func validTenantName(name string) error {
	switch {
	case name == "":
		return errors.New("empty tenant name")
	case len(name) > maxTenantNameLen:
		return fmt.Errorf("tenant name longer than %d bytes", maxTenantNameLen)
	case strings.ContainsAny(name, "/\x00"):
		return errors.New("tenant name contains '/' or NUL")
	}
	return nil
}

// snapshotPath maps a tenant name to its snapshot file. Hex encoding
// makes any name filesystem-safe and collision-free.
func (ts *tenantSet) snapshotPath(name string) string {
	return filepath.Join(ts.dir, "t-"+hex.EncodeToString([]byte(name))+".json")
}

// tenantNameFromSnapshot inverts snapshotPath; ok is false for foreign
// files in the data dir.
func tenantNameFromSnapshot(base string) (string, bool) {
	enc, found := strings.CutPrefix(base, "t-")
	if !found {
		return "", false
	}
	enc, found = strings.CutSuffix(enc, ".json")
	if !found {
		return "", false
	}
	name, err := hex.DecodeString(enc)
	if err != nil {
		return "", false
	}
	return string(name), true
}

// acquire pins the named tenant, reloading its disk snapshot or
// creating it fresh as needed, and may evict idle tenants to stay
// under the residency cap. Callers must release exactly once.
func (ts *tenantSet) acquire(name string) (*tenant, error) {
	if err := validTenantName(name); err != nil {
		return nil, err
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if t, ok := ts.resident[name]; ok {
		t.refs++
		ts.lru.MoveToFront(t.elem)
		return t, nil
	}
	repo, err := ts.loadSnapshotLocked(name)
	if err != nil {
		return nil, err
	}
	t := &tenant{name: name, refs: 1}
	t.repo.Store(repo)
	t.elem = ts.lru.PushFront(t)
	ts.resident[name] = t
	ts.evictLocked()
	ts.reg.Set("schemad_resident_tenants", int64(len(ts.resident)))
	return t, nil
}

// release unpins a tenant acquired with acquire.
func (ts *tenantSet) release(t *tenant) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t.refs--
}

// loadSnapshotLocked reads the tenant's snapshot if one exists, or
// returns a fresh repository.
func (ts *tenantSet) loadSnapshotLocked(name string) (*jsi.Repository, error) {
	f, err := os.Open(ts.snapshotPath(name))
	if errors.Is(err, fs.ErrNotExist) {
		return jsi.NewRepository(), nil
	}
	if err != nil {
		return nil, fmt.Errorf("loading tenant %q: %w", name, err)
	}
	repo, err := jsi.LoadRepository(f)
	cerr := f.Close()
	if err != nil {
		return nil, fmt.Errorf("loading tenant %q: %w", name, err)
	}
	if cerr != nil {
		return nil, fmt.Errorf("loading tenant %q: %w", name, cerr)
	}
	ts.reg.Add("schemad_tenant_loads", 1)
	return repo, nil
}

// writeSnapshot persists one repository atomically (temp file +
// rename), so a crash mid-write never corrupts an existing snapshot.
func (ts *tenantSet) writeSnapshot(name string, repo *jsi.Repository) (err error) {
	f, err := os.CreateTemp(ts.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("saving tenant %q: %w", name, err)
	}
	err = repo.Save(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(f.Name(), ts.snapshotPath(name))
	}
	if err != nil {
		err = errors.Join(err, os.Remove(f.Name()))
		return fmt.Errorf("saving tenant %q: %w", name, err)
	}
	return nil
}

// evictLocked spills least-recently-used idle tenants to disk until
// the residency cap holds. Tenants with requests in flight are never
// evicted; if everything is busy the set stays over cap until requests
// drain. A failed snapshot keeps its tenant resident (the data must
// not be dropped) and stops this eviction round.
func (ts *tenantSet) evictLocked() {
	for ts.max > 0 && ts.lru.Len() > ts.max {
		var victim *tenant
		for e := ts.lru.Back(); e != nil; e = e.Prev() {
			if t := e.Value.(*tenant); t.refs == 0 {
				victim = t
				break
			}
		}
		if victim == nil {
			return
		}
		if err := ts.writeSnapshot(victim.name, victim.repo.Load()); err != nil {
			ts.reg.Add("schemad_eviction_errors", 1)
			return
		}
		ts.lru.Remove(victim.elem)
		delete(ts.resident, victim.name)
		ts.reg.Add("schemad_evictions", 1)
	}
}

// remove deletes a tenant outright: resident state and disk snapshot.
// Requests still holding the tenant keep a working (now orphaned)
// repository; their writes die with it.
func (ts *tenantSet) remove(name string) (existed bool, err error) {
	if err := validTenantName(name); err != nil {
		return false, err
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if t, ok := ts.resident[name]; ok {
		ts.lru.Remove(t.elem)
		delete(ts.resident, name)
		existed = true
		ts.reg.Set("schemad_resident_tenants", int64(len(ts.resident)))
	}
	switch err := os.Remove(ts.snapshotPath(name)); {
	case err == nil:
		existed = true
	case !errors.Is(err, fs.ErrNotExist):
		return existed, fmt.Errorf("removing tenant %q: %w", name, err)
	}
	return existed, nil
}

// saveAll snapshots every resident tenant — the shutdown path, after
// the HTTP server has drained, so repositories survive a restart.
func (ts *tenantSet) saveAll() error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	names := make([]string, 0, len(ts.resident))
	for name := range ts.resident {
		names = append(names, name)
	}
	sort.Strings(names)
	var errs []error
	for _, name := range names {
		if err := ts.writeSnapshot(name, ts.resident[name].repo.Load()); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// tenantInfo is one row of the tenant listing.
type tenantInfo struct {
	Name     string `json:"name"`
	Resident bool   `json:"resident"`
	Records  int64  `json:"records,omitempty"`
}

// list reports every known tenant — resident ones with their record
// counts, plus evicted ones that exist only as snapshots — sorted by
// name.
func (ts *tenantSet) list() ([]tenantInfo, error) {
	ts.mu.Lock()
	infos := make(map[string]tenantInfo, len(ts.resident))
	for name, t := range ts.resident {
		infos[name] = tenantInfo{Name: name, Resident: true, Records: t.repo.Load().Count()}
	}
	ts.mu.Unlock()

	entries, err := os.ReadDir(ts.dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name, ok := tenantNameFromSnapshot(e.Name())
		if !ok {
			continue
		}
		if _, resident := infos[name]; !resident {
			infos[name] = tenantInfo{Name: name}
		}
	}
	names := make([]string, 0, len(infos))
	for name := range infos {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]tenantInfo, len(names))
	for i, name := range names {
		out[i] = infos[name]
	}
	return out, nil
}
