package serving

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	jsi "repro"
	"repro/internal/dataset"
)

// newTestServer builds a Server over a scratch data dir and mounts it
// on an httptest listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return srv, hs
}

// doReq issues one request and returns status and body.
func doReq(t *testing.T, method, url string, body []byte) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, rerr := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); rerr == nil {
		rerr = cerr
	}
	if rerr != nil {
		t.Fatal(rerr)
	}
	return resp.StatusCode, out
}

func ingest(t *testing.T, base, tenant, partition string, data []byte) {
	t.Helper()
	status, body := doReq(t, http.MethodPost,
		fmt.Sprintf("%s/v1/tenants/%s/ingest?partition=%s", base, tenant, partition), data)
	if status != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", status, body)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	status, body := doReq(t, http.MethodGet, hs.URL+"/healthz", nil)
	if status != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("healthz: status %d, body %s", status, body)
	}
	ingest(t, hs.URL, "m", "default", []byte(`{"a":1}`+"\n"))
	status, body = doReq(t, http.MethodGet, hs.URL+"/v1/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	if doc.Counters["schemad_ingest_records"] != 1 {
		t.Errorf("schemad_ingest_records = %d, want 1\n%s", doc.Counters["schemad_ingest_records"], body)
	}
}

// TestIngestMatchesOffline is the core serving guarantee: batches
// ingested over HTTP across partitions fuse to the same schema as
// offline inference over the concatenation — byte-identical in codec
// format.
func TestIngestMatchesOffline(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	g, err := dataset.New("github")
	if err != nil {
		t.Fatal(err)
	}
	data := dataset.NDJSON(g, 300, 7)
	lines := bytes.SplitAfter(data, []byte("\n"))
	third := len(lines) / 3
	ingest(t, hs.URL, "acme", "p0", bytes.Join(lines[:third], nil))
	ingest(t, hs.URL, "acme", "p1", bytes.Join(lines[third:2*third], nil))
	ingest(t, hs.URL, "acme", "p0", bytes.Join(lines[2*third:], nil))

	status, got := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/acme/schema?format=codec", nil)
	if status != http.StatusOK {
		t.Fatalf("schema: status %d: %s", status, got)
	}
	offline, _, err := jsi.InferNDJSON(data, jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := offline.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(got), want) {
		t.Errorf("served schema differs from offline:\nserved:  %s\noffline: %s", got, want)
	}
}

// TestTenantIsolation: two tenants with different data never see each
// other's fields.
func TestTenantIsolation(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	ingest(t, hs.URL, "alpha", "default", []byte(`{"alpha_only":1}`+"\n"))
	ingest(t, hs.URL, "beta", "default", []byte(`{"beta_only":"x"}`+"\n"))
	_, a := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/alpha/schema", nil)
	_, b := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/beta/schema", nil)
	if bytes.Contains(a, []byte("beta_only")) || bytes.Contains(b, []byte("alpha_only")) {
		t.Errorf("tenant schemas leaked across tenants:\nalpha: %s\nbeta: %s", a, b)
	}
}

func TestSchemaFormats(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	ingest(t, hs.URL, "f", "default", []byte(`{"a":1}`+"\n"))
	for _, format := range []string{"type", "indent", "jsonschema", "codec"} {
		status, body := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/f/schema?format="+format, nil)
		if status != http.StatusOK || len(bytes.TrimSpace(body)) == 0 {
			t.Errorf("format %s: status %d, body %q", format, status, body)
		}
	}
	status, _ := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/f/schema?format=bogus", nil)
	if status != http.StatusBadRequest {
		t.Errorf("bogus format: status %d, want 400", status)
	}
}

func TestPartitionEndpoints(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	ingest(t, hs.URL, "p", "jan", []byte(`{"a":1}`+"\n"))
	ingest(t, hs.URL, "p", "feb", []byte(`{"a":"s"}`+"\n"))

	status, body := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/p/partitions", nil)
	if status != http.StatusOK {
		t.Fatalf("partitions: status %d", status)
	}
	var doc struct {
		Partitions []struct {
			Name    string `json:"name"`
			Records int64  `json:"records"`
		} `json:"partitions"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Partitions) != 2 || doc.Partitions[0].Name != "feb" || doc.Partitions[1].Name != "jan" {
		t.Errorf("partitions = %+v, want sorted [feb jan]", doc.Partitions)
	}

	status, body = doReq(t, http.MethodGet, hs.URL+"/v1/tenants/p/partitions/jan/schema", nil)
	if status != http.StatusOK || !bytes.Contains(body, []byte("Num")) {
		t.Errorf("partition schema: status %d, body %s", status, body)
	}
	status, _ = doReq(t, http.MethodGet, hs.URL+"/v1/tenants/p/partitions/mar/schema", nil)
	if status != http.StatusNotFound {
		t.Errorf("absent partition schema: status %d, want 404", status)
	}

	status, _ = doReq(t, http.MethodDelete, hs.URL+"/v1/tenants/p/partitions/jan", nil)
	if status != http.StatusOK {
		t.Errorf("drop partition: status %d", status)
	}
	status, _ = doReq(t, http.MethodDelete, hs.URL+"/v1/tenants/p/partitions/jan", nil)
	if status != http.StatusNotFound {
		t.Errorf("re-drop partition: status %d, want 404", status)
	}
	// After dropping jan the fused schema shrinks to feb's.
	_, schema := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/p/schema", nil)
	if got := string(bytes.TrimSpace(schema)); got != "{a: Str}" {
		t.Errorf("schema after drop = %s, want {a: Str}", got)
	}
}

func TestDiffEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	ingest(t, hs.URL, "d", "default", []byte(`{"id":1}`+"\n"))
	_, prior := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/d/schema?format=codec", nil)
	ingest(t, hs.URL, "d", "default", []byte(`{"id":"x","extra":true}`+"\n"))

	status, body := doReq(t, http.MethodPost, hs.URL+"/v1/tenants/d/diff", bytes.TrimSpace(prior))
	if status != http.StatusOK {
		t.Fatalf("diff: status %d: %s", status, body)
	}
	var doc struct {
		Count   int `json:"count"`
		Changes []struct {
			Path string `json:"path"`
			Kind string `json:"kind"`
		} `json:"changes"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	kinds := make(map[string]string, len(doc.Changes))
	for _, c := range doc.Changes {
		kinds[c.Path] = c.Kind
	}
	if kinds["./extra"] != "added" || kinds["./id"] != "type-changed" {
		t.Errorf("diff changes = %+v", doc.Changes)
	}

	// Identical prior → zero changes.
	_, now := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/d/schema?format=codec", nil)
	status, body = doReq(t, http.MethodPost, hs.URL+"/v1/tenants/d/diff", bytes.TrimSpace(now))
	if status != http.StatusOK {
		t.Fatalf("diff(now): status %d", status)
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Count != 0 {
		t.Errorf("self-diff count = %d, want 0", doc.Count)
	}

	status, _ = doReq(t, http.MethodPost, hs.URL+"/v1/tenants/d/diff", []byte("{not json"))
	if status != http.StatusBadRequest {
		t.Errorf("malformed diff body: status %d, want 400", status)
	}
}

func TestValidateEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	ingest(t, hs.URL, "v", "default", []byte(`{"id":1,"name":"a"}`+"\n"))

	status, body := doReq(t, http.MethodPost, hs.URL+"/v1/tenants/v/validate",
		[]byte(`{"id":2,"name":"b"}`+"\n"+`{"id":"oops","name":"c"}`+"\n"))
	if status != http.StatusOK {
		t.Fatalf("validate: status %d: %s", status, body)
	}
	var doc struct {
		Checked  int64 `json:"checked"`
		Valid    int64 `json:"valid"`
		Invalid  int64 `json:"invalid"`
		Failures []struct {
			Record int64  `json:"record"`
			Error  string `json:"error"`
		} `json:"failures"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Checked != 2 || doc.Valid != 1 || doc.Invalid != 1 {
		t.Errorf("validate = %+v", doc)
	}
	if len(doc.Failures) != 1 || doc.Failures[0].Record != 2 {
		t.Errorf("failures = %+v", doc.Failures)
	}

	// Malformed JSON mid-stream stops validation with a parse failure.
	status, body = doReq(t, http.MethodPost, hs.URL+"/v1/tenants/v/validate",
		[]byte(`{"id":3,"name":"d"}`+"\n"+"{broken\n"))
	if status != http.StatusOK {
		t.Fatalf("validate(malformed): status %d", status)
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Valid != 1 || len(doc.Failures) != 1 || !strings.Contains(doc.Failures[0].Error, "") {
		t.Errorf("validate(malformed) = %+v", doc)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	ingest(t, hs.URL, "s", "default", []byte(`{"a":1}`+"\n"+`{"a":2,"b":"x"}`+"\n"))

	status, snap := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/s/snapshot", nil)
	if status != http.StatusOK {
		t.Fatalf("snapshot get: status %d", status)
	}
	_, wantSchema := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/s/schema", nil)

	// Restore into a different tenant; its schema must match.
	status, body := doReq(t, http.MethodPut, hs.URL+"/v1/tenants/s2/snapshot", snap)
	if status != http.StatusOK {
		t.Fatalf("snapshot put: status %d: %s", status, body)
	}
	var doc struct {
		Records int64 `json:"records"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Records != 2 {
		t.Errorf("restored records = %d, want 2", doc.Records)
	}
	_, gotSchema := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/s2/schema", nil)
	if !bytes.Equal(gotSchema, wantSchema) {
		t.Errorf("restored schema = %s, want %s", gotSchema, wantSchema)
	}

	status, _ = doReq(t, http.MethodPut, hs.URL+"/v1/tenants/s3/snapshot", []byte("{bad"))
	if status != http.StatusBadRequest {
		t.Errorf("bad snapshot: status %d, want 400", status)
	}
}

// TestEnrichmentEndToEnd drives the enrichment lattice through the
// whole serving surface: server-wide -enrich config, the per-request
// ingest override, the format=enrich report, the enrich=off strip, and
// snapshot save/restore carrying annotations across tenants. The
// served annotated schema must be byte-identical to offline enriched
// inference over the concatenation.
func TestEnrichmentEndToEnd(t *testing.T) {
	_, hs := newTestServer(t, Config{Enrich: []string{"all"}})
	batches := [][]byte{
		[]byte(`{"n": 3, "when": "2024-01-05"}` + "\n" + `{"n": 1, "when": "2023-11-30"}` + "\n"),
		[]byte(`{"n": 2.5, "tags": ["a", "b"]}` + "\n"),
	}
	ingest(t, hs.URL, "e", "p0", batches[0])
	ingest(t, hs.URL, "e", "p1", batches[1])

	offline, _, err := jsi.InferNDJSON(append(append([]byte{}, batches[0]...), batches[1]...),
		jsi.Options{Enrich: []string{"all"}})
	if err != nil {
		t.Fatal(err)
	}
	wantJS, err := offline.JSONSchema()
	if err != nil {
		t.Fatal(err)
	}
	wantReport, err := offline.EnrichmentJSON()
	if err != nil {
		t.Fatal(err)
	}

	status, js := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/e/schema?format=jsonschema", nil)
	if status != http.StatusOK {
		t.Fatalf("jsonschema: status %d: %s", status, js)
	}
	if !bytes.Equal(bytes.TrimSpace(js), bytes.TrimSpace(wantJS)) {
		t.Errorf("served annotated schema differs from offline:\nserved:  %s\noffline: %s", js, wantJS)
	}

	status, rep := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/e/schema?format=enrich", nil)
	if status != http.StatusOK {
		t.Fatalf("format=enrich: status %d: %s", status, rep)
	}
	if !bytes.Equal(bytes.TrimSpace(rep), bytes.TrimSpace(wantReport)) {
		t.Errorf("served report differs from offline:\nserved:  %s\noffline: %s", rep, wantReport)
	}

	// enrich=off strips annotations from any format.
	status, plain := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/e/schema?format=jsonschema&enrich=off", nil)
	if status != http.StatusOK {
		t.Fatalf("enrich=off: status %d", status)
	}
	if bytes.Contains(plain, []byte("x-distinctValues")) || bytes.Contains(plain, []byte(`"minimum"`)) {
		t.Errorf("enrich=off left annotations in: %s", plain)
	}

	// The per-partition schema carries its own lattice.
	status, pjs := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/e/partitions/p0/schema?format=jsonschema", nil)
	if status != http.StatusOK || !bytes.Contains(pjs, []byte(`"minimum"`)) {
		t.Errorf("partition schema unannotated: status %d, body %s", status, pjs)
	}

	// Snapshot round-trip: annotations survive save + restore into a
	// fresh tenant byte for byte.
	status, snap := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/e/snapshot", nil)
	if status != http.StatusOK {
		t.Fatalf("snapshot get: status %d", status)
	}
	status, body := doReq(t, http.MethodPut, hs.URL+"/v1/tenants/e2/snapshot", snap)
	if status != http.StatusOK {
		t.Fatalf("snapshot put: status %d: %s", status, body)
	}
	_, js2 := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/e2/schema?format=jsonschema", nil)
	if !bytes.Equal(js2, js) {
		t.Errorf("restored annotated schema differs:\nrestored: %s\noriginal: %s", js2, js)
	}

	// Per-request override on an enrichment-off server: only the
	// overridden ingest produces annotations.
	_, hs2 := newTestServer(t, Config{})
	status, body = doReq(t, http.MethodPost, hs2.URL+"/v1/tenants/o/ingest?enrich=ranges", batches[0])
	if status != http.StatusOK {
		t.Fatalf("override ingest: status %d: %s", status, body)
	}
	_, js3 := doReq(t, http.MethodGet, hs2.URL+"/v1/tenants/o/schema?format=jsonschema", nil)
	if !bytes.Contains(js3, []byte(`"minimum"`)) {
		t.Errorf("enrich=ranges override produced no range annotations: %s", js3)
	}
	if bytes.Contains(js3, []byte("x-distinctValues")) {
		t.Errorf("enrich=ranges override enabled more than ranges: %s", js3)
	}

	// And the reverse: enrich=off ingest on an enrichment-on server.
	status, _ = doReq(t, http.MethodPost, hs.URL+"/v1/tenants/off/ingest?enrich=off", batches[0])
	if status != http.StatusOK {
		t.Fatalf("enrich=off ingest: status %d", status)
	}
	_, js4 := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/off/schema?format=jsonschema", nil)
	if bytes.Contains(js4, []byte(`"minimum"`)) {
		t.Errorf("enrich=off ingest still annotated: %s", js4)
	}

	// Invalid selections fail loudly, both at config and request level.
	if _, err := New(Config{DataDir: t.TempDir(), Enrich: []string{"bogus"}}); err == nil {
		t.Error("New accepted an unknown monoid name")
	}
	status, _ = doReq(t, http.MethodPost, hs.URL+"/v1/tenants/e/ingest?enrich=bogus", batches[0])
	if status != http.StatusBadRequest {
		t.Errorf("bogus enrich ingest: status %d, want 400", status)
	}
}

func TestDeleteTenant(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	ingest(t, hs.URL, "del", "default", []byte(`{"a":1}`+"\n"))
	status, _ := doReq(t, http.MethodDelete, hs.URL+"/v1/tenants/del", nil)
	if status != http.StatusOK {
		t.Errorf("delete: status %d", status)
	}
	status, _ = doReq(t, http.MethodDelete, hs.URL+"/v1/tenants/del", nil)
	if status != http.StatusNotFound {
		t.Errorf("re-delete: status %d, want 404", status)
	}
	// The tenant comes back empty on next touch.
	_, schema := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/del/schema", nil)
	if got := string(bytes.TrimSpace(schema)); got != "ε" {
		t.Errorf("schema after delete = %q, want empty type", got)
	}
}

func TestListTenants(t *testing.T) {
	srv, hs := newTestServer(t, Config{MaxResidentTenants: 1})
	ingest(t, hs.URL, "one", "default", []byte(`{"a":1}`+"\n"))
	ingest(t, hs.URL, "two", "default", []byte(`{"b":1}`+"\n"))
	// Cap 1: tenant "one" has been evicted to disk by now.
	status, body := doReq(t, http.MethodGet, hs.URL+"/v1/tenants", nil)
	if status != http.StatusOK {
		t.Fatalf("list: status %d", status)
	}
	var doc struct {
		Tenants []tenantInfo `json:"tenants"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Tenants) != 2 || doc.Tenants[0].Name != "one" || doc.Tenants[1].Name != "two" {
		t.Fatalf("tenants = %+v, want [one two]", doc.Tenants)
	}
	if doc.Tenants[0].Resident || !doc.Tenants[1].Resident {
		t.Errorf("residency = %+v, want one evicted, two resident", doc.Tenants)
	}
	if got := srv.Metrics().Counters["schemad_evictions"]; got < 1 {
		t.Errorf("schemad_evictions = %d, want >= 1", got)
	}
}

// TestEvictionPreservesSchemas: with a residency cap of 2, ingesting
// into many tenants forces spill/reload cycles; every tenant's final
// schema must still match offline inference.
func TestEvictionPreservesSchemas(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxResidentTenants: 2})
	const tenants = 8
	var datas [tenants][]byte
	for round := 0; round < 3; round++ {
		for i := 0; i < tenants; i++ {
			rec := []byte(fmt.Sprintf(`{"tenant":%d,"round":%d,"k%d":true}`+"\n", i, round, round))
			datas[i] = append(datas[i], rec...)
			ingest(t, hs.URL, fmt.Sprintf("ev-%d", i), "default", rec)
		}
	}
	for i := 0; i < tenants; i++ {
		_, got := doReq(t, http.MethodGet, hs.URL+fmt.Sprintf("/v1/tenants/ev-%d/schema?format=codec", i), nil)
		offline, _, err := jsi.InferNDJSON(datas[i], jsi.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := offline.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bytes.TrimSpace(got), want) {
			t.Errorf("tenant ev-%d: schema %s, want %s", i, got, want)
		}
	}
}

// TestSnapshotSurvivesRestart: SaveAll + a fresh Server over the same
// data dir restores every tenant.
func TestSnapshotSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	srv, hs := newTestServer(t, Config{DataDir: dir})
	ingest(t, hs.URL, "persist", "default", []byte(`{"a":1}`+"\n"))
	_, want := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/persist/schema", nil)
	if err := srv.SaveAll(); err != nil {
		t.Fatal(err)
	}
	hs.Close()

	_, hs2 := newTestServer(t, Config{DataDir: dir})
	_, got := doReq(t, http.MethodGet, hs2.URL+"/v1/tenants/persist/schema", nil)
	if !bytes.Equal(got, want) {
		t.Errorf("schema after restart = %s, want %s", got, want)
	}
}

func TestIngestQuarantine(t *testing.T) {
	// Small chunks so the one malformed record poisons a single chunk
	// rather than the whole body.
	_, hs := newTestServer(t, Config{ChunkBytes: 1 << 10})
	var buf bytes.Buffer
	for i := 0; i < 2000; i++ {
		if i == 999 {
			buf.WriteString("{broken\n")
			continue
		}
		fmt.Fprintf(&buf, `{"id": %d}`+"\n", i)
	}
	// Default policy: the malformed chunk fails the request and leaves
	// the repository untouched.
	status, _ := doReq(t, http.MethodPost, hs.URL+"/v1/tenants/q/ingest", buf.Bytes())
	if status != http.StatusBadRequest {
		t.Fatalf("malformed ingest: status %d, want 400", status)
	}
	_, schema := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/q/schema", nil)
	if got := string(bytes.TrimSpace(schema)); got != "ε" {
		t.Errorf("schema after failed ingest = %q, want empty", got)
	}

	// on_error=skip quarantines the chunk and commits the rest.
	status, body := doReq(t, http.MethodPost,
		hs.URL+"/v1/tenants/q/ingest?on_error=skip", buf.Bytes())
	if status != http.StatusOK {
		t.Fatalf("skip ingest: status %d: %s", status, body)
	}
	var doc ingestResponse
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.QuarantinedChunks < 1 {
		t.Errorf("quarantined_chunks = %d, want >= 1", doc.QuarantinedChunks)
	}
	_, schema = doReq(t, http.MethodGet, hs.URL+"/v1/tenants/q/schema", nil)
	if got := string(bytes.TrimSpace(schema)); got != "{id: Num}" {
		t.Errorf("schema after skip ingest = %q, want {id: Num}", got)
	}

	status, _ = doReq(t, http.MethodPost, hs.URL+"/v1/tenants/q/ingest?on_error=bogus", nil)
	if status != http.StatusBadRequest {
		t.Errorf("bogus on_error: status %d, want 400", status)
	}
}

func TestIngestBodyCap(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxBodyBytes: 1 << 10})
	big := bytes.Repeat([]byte(`{"pad":"xxxxxxxxxxxxxxxx"}`+"\n"), 200)
	status, body := doReq(t, http.MethodPost, hs.URL+"/v1/tenants/cap/ingest", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest: status %d: %s", status, body)
	}
	_, schema := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/cap/schema", nil)
	if got := string(bytes.TrimSpace(schema)); got != "ε" {
		t.Errorf("schema after rejected ingest = %q, want empty", got)
	}
}

// slowBody feeds records then blocks until its context dies,
// simulating a client that stalls mid-upload.
type slowBody struct {
	data []byte
	ctx  context.Context
}

func (b *slowBody) Read(p []byte) (int, error) {
	if len(b.data) > 0 {
		n := copy(p, b.data)
		b.data = b.data[n:]
		return n, nil
	}
	<-b.ctx.Done()
	return 0, b.ctx.Err()
}

// TestIngestCancellationMidStream cancels the request context while
// the body is still streaming; the server must abort the pipeline and
// commit nothing.
func TestIngestCancellationMidStream(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	body := &slowBody{data: bytes.Repeat([]byte(`{"a":1}`+"\n"), 100), ctx: ctx}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		hs.URL+"/v1/tenants/cancel/ingest", body)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			err = resp.Body.Close()
		}
		done <- err
	}()
	cancel()
	if err := <-done; err == nil {
		t.Fatal("cancelled ingest returned a response")
	}
	_, schema := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/cancel/schema", nil)
	if got := string(bytes.TrimSpace(schema)); got != "ε" {
		t.Errorf("schema after cancelled ingest = %q, want empty", got)
	}
}

func TestTenantNameValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	long := strings.Repeat("x", maxTenantNameLen+1)
	status, _ := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/"+long+"/schema", nil)
	if status != http.StatusBadRequest {
		t.Errorf("overlong tenant name: status %d, want 400", status)
	}
}

// TestConcurrentMixedTraffic hammers one server with ingests, schema
// reads, validations, and snapshots across a small tenant set under a
// tight residency cap — the -race stress for the serving layer.
func TestConcurrentMixedTraffic(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxResidentTenants: 2})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := fmt.Sprintf("mix-%d", w%3)
			for i := 0; i < 15; i++ {
				rec := []byte(fmt.Sprintf(`{"w":%d,"i":%d}`+"\n", w, i))
				switch i % 4 {
				case 0, 1:
					status, body := doReq(t, http.MethodPost,
						fmt.Sprintf("%s/v1/tenants/%s/ingest?partition=p%d", hs.URL, tenant, w%2), rec)
					if status != http.StatusOK {
						t.Errorf("ingest: status %d: %s", status, body)
					}
				case 2:
					doReq(t, http.MethodGet, hs.URL+"/v1/tenants/"+tenant+"/schema", nil)
				case 3:
					doReq(t, http.MethodPost, hs.URL+"/v1/tenants/"+tenant+"/validate", rec)
				}
			}
		}(w)
	}
	wg.Wait()
	// Every record carried the same shape; all three tenants must agree.
	want := "{i: Num, w: Num}"
	for i := 0; i < 3; i++ {
		_, schema := doReq(t, http.MethodGet, fmt.Sprintf("%s/v1/tenants/mix-%d/schema", hs.URL, i), nil)
		if got := string(bytes.TrimSpace(schema)); got != want {
			t.Errorf("tenant mix-%d schema = %q, want %q", i, got, want)
		}
	}
}

// TestForeignFilesIgnored: stray files in the data dir don't appear
// as tenants.
func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(dir+"/README.txt", []byte("not a snapshot"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir+"/t-zz.json", []byte("bad hex"), 0o600); err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, Config{DataDir: dir})
	status, body := doReq(t, http.MethodGet, hs.URL+"/v1/tenants", nil)
	if status != http.StatusOK {
		t.Fatalf("list: status %d", status)
	}
	var doc struct {
		Tenants []tenantInfo `json:"tenants"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Tenants) != 0 {
		t.Errorf("tenants = %+v, want none", doc.Tenants)
	}
}

func TestNewRequiresDataDir(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted empty DataDir")
	}
}
