// Package serving implements the multi-tenant schema service behind
// cmd/schemad. Each tenant owns an isolated incremental repository
// (its own lock, partitions, and dedup state); HTTP handlers stream
// NDJSON request bodies through the internal/pipeline engine via
// jsoninference.FromChunkedReader, so ingestion gets the same
// parallel map phase, retry budget, and quarantine policy as the
// offline CLI — and, by fusion's associativity and commutativity,
// the same schemas, byte for byte.
//
// Memory is bounded on two axes: request bodies are capped with
// http.MaxBytesReader, and at most MaxResidentTenants repositories
// stay in memory — idle tenants are spilled to disk snapshots and
// reloaded transparently (see tenantSet).
//
// The package is independent of any particular listener: Server
// implements http.Handler, so cmd/schemad, cmd/schemadload, and
// httptest all mount the same routes.
package serving

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"

	jsi "repro"
	"repro/internal/enrich"
	"repro/internal/jsontext"
	"repro/internal/obs"
	"repro/internal/types"
)

// Config parameterises a Server. The zero value of every field except
// DataDir is usable; zeros become the documented defaults.
type Config struct {
	// DataDir holds tenant snapshots (eviction spill and shutdown
	// saves). Required; created with 0o700 if absent.
	DataDir string

	// MaxResidentTenants caps in-memory repositories; beyond it the
	// least-recently-used idle tenant is snapshotted to DataDir and
	// dropped. Zero means 1024.
	MaxResidentTenants int

	// MaxBodyBytes caps every request body (ingest, validate, diff,
	// snapshot restore). Zero means 64 MiB.
	MaxBodyBytes int64

	// IngestWorkers is the map-phase parallelism of each ingest
	// request's pipeline. Zero means 2 — modest per request, because
	// concurrency across tenants is the service's main axis.
	IngestWorkers int

	// ChunkBytes is the pipeline chunk size for ingest bodies; zero
	// means the library default.
	ChunkBytes int

	// Retries is the per-chunk retry budget applied to every ingest.
	Retries int

	// OnErrorSkip makes quarantine-and-continue the default policy for
	// malformed chunks; requests can override it per call with the
	// on_error query parameter.
	OnErrorSkip bool

	// Dedup selects the deduplication mode of ingest pipelines:
	// jsi.DedupOff (the zero value), jsi.DedupOn, or jsi.DedupAuto.
	Dedup jsi.DedupMode

	// Enrich names the enrichment monoids (docs/ENRICHMENT.md) computed
	// on every ingest: "ranges", "hll", ..., or "all". Empty disables
	// enrichment. Requests can override it per call with the enrich
	// query parameter (a comma list, "all", or "off").
	Enrich []string

	// TaggedUnions enables tagged-union inference (docs/UNIONS.md) on
	// every ingest: discriminated records fuse into one variant per
	// observed tag instead of one blurred record. Requests can override
	// it per call with the tagged query parameter ("true" or "false").
	TaggedUnions bool

	// UnionKeys overrides the discriminator field names probed by
	// tagged-union inference, in priority order; empty means the library
	// default ("type", "event", "kind"). Requests can override it per
	// call with the union_keys query parameter (a comma list).
	UnionKeys []string

	// Logf receives operational messages (eviction failures, snapshot
	// errors). Nil discards them.
	Logf func(format string, args ...any)
}

// A Server is the schemad HTTP API: an http.Handler exposing
// per-tenant ingest, schema retrieval, diff, validation, and
// snapshot endpoints over a bounded set of resident repositories.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	tenants *tenantSet
	mux     *http.ServeMux
}

// New builds a Server from cfg, creating cfg.DataDir if needed.
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, errors.New("serving: Config.DataDir is required")
	}
	if err := os.MkdirAll(cfg.DataDir, 0o700); err != nil {
		return nil, fmt.Errorf("serving: %w", err)
	}
	if cfg.MaxResidentTenants <= 0 {
		cfg.MaxResidentTenants = 1024
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.IngestWorkers <= 0 {
		cfg.IngestWorkers = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if len(cfg.Enrich) > 0 {
		if _, err := enrich.ParseSet(cfg.Enrich); err != nil {
			return nil, fmt.Errorf("serving: %w", err)
		}
	}
	s := &Server{cfg: cfg, reg: obs.NewRegistry()}
	s.tenants = newTenantSet(cfg.DataDir, cfg.MaxResidentTenants, s.reg)
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/tenants", s.handleListTenants)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/ingest", s.tenantHandler(s.handleIngest))
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/schema", s.tenantHandler(s.handleSchema))
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/partitions", s.tenantHandler(s.handlePartitions))
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/partitions/{part}/schema", s.tenantHandler(s.handlePartitionSchema))
	s.mux.HandleFunc("DELETE /v1/tenants/{tenant}/partitions/{part}", s.tenantHandler(s.handleDropPartition))
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/diff", s.tenantHandler(s.handleDiff))
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/validate", s.tenantHandler(s.handleValidate))
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/snapshot", s.tenantHandler(s.handleSnapshotGet))
	s.mux.HandleFunc("PUT /v1/tenants/{tenant}/snapshot", s.tenantHandler(s.handleSnapshotPut))
	s.mux.HandleFunc("DELETE /v1/tenants/{tenant}", s.handleDeleteTenant)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Metrics snapshots the server's counters and gauges.
func (s *Server) Metrics() obs.Metrics { return s.reg.Snapshot() }

// SaveAll snapshots every resident tenant to the data directory —
// the graceful-shutdown hook, called after the listener has drained.
func (s *Server) SaveAll() error { return s.tenants.saveAll() }

// --- plumbing ---------------------------------------------------------

// writeJSON marshals v and sends it with the given status. Marshal
// failures (a server bug, not client error) degrade to a 500.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		s.reg.Add("schemad_errors", 1)
		http.Error(w, "response encoding failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

// writeError sends a JSON error document.
func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.reg.Add("schemad_errors", 1)
	s.writeJSON(w, status, map[string]string{"error": err.Error()})
}

// tenantHandler adapts a tenant-scoped handler: it validates the
// {tenant} path value, pins the tenant for the duration of the
// request (loading its snapshot or creating it as needed), and
// releases it afterwards.
func (s *Server) tenantHandler(fn func(w http.ResponseWriter, r *http.Request, t *tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t, err := s.tenants.acquire(r.PathValue("tenant"))
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		defer s.tenants.release(t)
		fn(w, r, t)
	}
}

// body returns the request body capped at the configured limit.
func (s *Server) body(w http.ResponseWriter, r *http.Request) io.ReadCloser {
	return http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
}

// ingestOptions builds the pipeline options for one ingest request,
// applying any per-request on_error override.
func (s *Server) ingestOptions(r *http.Request) (jsi.Options, error) {
	opts := jsi.Options{
		Workers:    s.cfg.IngestWorkers,
		ChunkBytes: s.cfg.ChunkBytes,
		Retries:    s.cfg.Retries,
		Dedup:      s.cfg.Dedup,
	}
	if s.cfg.OnErrorSkip {
		opts.OnError = jsi.OnErrorSkip
	}
	switch v := r.URL.Query().Get("on_error"); v {
	case "":
	case "fail":
		opts.OnError = jsi.OnErrorFail
	case "skip":
		opts.OnError = jsi.OnErrorSkip
	default:
		return opts, fmt.Errorf("unknown on_error %q (want fail or skip)", v)
	}
	opts.Enrich = s.cfg.Enrich
	if r.URL.Query().Has("enrich") {
		switch v := r.URL.Query().Get("enrich"); v {
		case "off", "none", "0", "":
			opts.Enrich = nil
		default:
			opts.Enrich = []string{v}
		}
	}
	opts.TaggedUnions = s.cfg.TaggedUnions
	opts.UnionKeys = s.cfg.UnionKeys
	if r.URL.Query().Has("tagged") {
		on, err := strconv.ParseBool(r.URL.Query().Get("tagged"))
		if err != nil {
			return opts, fmt.Errorf("invalid tagged %q (want true or false)", r.URL.Query().Get("tagged"))
		}
		opts.TaggedUnions = on
	}
	if v := r.URL.Query().Get("union_keys"); v != "" {
		if !opts.TaggedUnions {
			return opts, errors.New("union_keys requires tagged union inference (tagged=true or Config.TaggedUnions)")
		}
		opts.UnionKeys = strings.Split(v, ",")
	}
	return opts, nil
}

// --- handlers ---------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"heap_bytes": ms.HeapAlloc,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

func (s *Server) handleListTenants(w http.ResponseWriter, _ *http.Request) {
	infos, err := s.tenants.list()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"tenants": infos})
}

// ingestResponse reports one completed ingest request.
type ingestResponse struct {
	Tenant            string `json:"tenant"`
	Partition         string `json:"partition"`
	Records           int64  `json:"records"`
	Bytes             int64  `json:"bytes"`
	Retries           int64  `json:"retries,omitempty"`
	QuarantinedChunks int64  `json:"quarantined_chunks,omitempty"`
	SchemaSize        int    `json:"schema_size"`
	TotalRecords      int64  `json:"total_records"`
}

// handleIngest streams the request body (NDJSON) through the
// inference pipeline and fuses the result into the tenant's
// partition. The operation is all-or-nothing per request: a body
// that fails (under the effective error policy) leaves the
// repository untouched.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request, t *tenant) {
	part := r.URL.Query().Get("partition")
	if part == "" {
		part = "default"
	}
	opts, err := s.ingestOptions(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	schema, stats, err := jsi.Infer(r.Context(), jsi.FromChunkedReader(s.body(w, r)), opts)
	if err != nil {
		var mbe *http.MaxBytesError
		switch {
		case errors.As(err, &mbe):
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("body exceeds %d bytes", s.cfg.MaxBodyBytes))
		case r.Context().Err() != nil:
			// The client went away mid-stream; nothing was committed
			// and nobody is reading the response.
			s.reg.Add("schemad_cancelled_ingests", 1)
			s.writeError(w, http.StatusBadRequest, r.Context().Err())
		default:
			s.writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	repo := t.repo.Load()
	repo.Append(part, schema, stats.Records)
	s.reg.Add("schemad_ingest_requests", 1)
	s.reg.Add("schemad_ingest_records", stats.Records)
	s.reg.Add("schemad_ingest_bytes", stats.Bytes)
	s.reg.Add("schemad_quarantined_chunks", int64(stats.QuarantinedChunks))
	s.reg.Observe("schemad_ingest_batch_records", stats.Records)
	s.writeJSON(w, http.StatusOK, ingestResponse{
		Tenant:            t.name,
		Partition:         part,
		Records:           stats.Records,
		Bytes:             stats.Bytes,
		Retries:           int64(stats.Retries),
		QuarantinedChunks: int64(stats.QuarantinedChunks),
		SchemaSize:        schema.Size(),
		TotalRecords:      repo.Count(),
	})
}

// renderSchema writes a schema in the requested format: type
// (default), indent, jsonschema, codec, or enrich (the per-path
// enrichment report). enrich=0 strips enrichment annotations first, so
// clients can fetch the plain JSON Schema from an enriched tenant.
func (s *Server) renderSchema(w http.ResponseWriter, r *http.Request, schema *jsi.Schema) {
	switch v := r.URL.Query().Get("enrich"); v {
	case "off", "none", "0":
		schema = schema.WithoutEnrichment()
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "type":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, schema.String())
	case "indent":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, schema.Indent())
	case "jsonschema":
		out, err := schema.JSONSchema()
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(out, '\n'))
	case "codec":
		out, err := schema.MarshalJSON()
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(out, '\n'))
	case "enrich":
		out, err := schema.EnrichmentJSON()
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(out, '\n'))
	default:
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown format %q (want type, indent, jsonschema, codec, or enrich)", format))
	}
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request, t *tenant) {
	s.renderSchema(w, r, t.repo.Load().Schema())
}

// partitionInfo is one row of the partition listing.
type partitionInfo struct {
	Name       string `json:"name"`
	Records    int64  `json:"records"`
	SchemaSize int    `json:"schema_size"`
}

func (s *Server) handlePartitions(w http.ResponseWriter, _ *http.Request, t *tenant) {
	repo := t.repo.Load()
	names := repo.Partitions()
	infos := make([]partitionInfo, 0, len(names))
	for _, name := range names {
		info := partitionInfo{Name: name}
		if schema, ok := repo.PartitionSchema(name); ok {
			info.SchemaSize = schema.Size()
		}
		if n, ok := repo.PartitionCount(name); ok {
			info.Records = n
		}
		infos = append(infos, info)
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"tenant": t.name, "partitions": infos})
}

func (s *Server) handlePartitionSchema(w http.ResponseWriter, r *http.Request, t *tenant) {
	schema, ok := t.repo.Load().PartitionSchema(r.PathValue("part"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no partition %q", r.PathValue("part")))
		return
	}
	s.renderSchema(w, r, schema)
}

func (s *Server) handleDropPartition(w http.ResponseWriter, r *http.Request, t *tenant) {
	part := r.PathValue("part")
	if !t.repo.Load().DropPartition(part) {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no partition %q", part))
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"tenant": t.name, "dropped": part})
}

// handleDiff compares the tenant's live schema against a prior
// version posted as the request body (codec JSON, as produced by the
// snapshot of GET schema?format=codec).
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request, t *tenant) {
	data, err := io.ReadAll(s.body(w, r))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	prior, err := jsi.UnmarshalSchemaJSON(data)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding prior schema: %w", err))
		return
	}
	changes := t.repo.Load().Schema().DiffFrom(prior)
	if changes == nil {
		changes = []jsi.SchemaChange{}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"tenant":  t.name,
		"count":   len(changes),
		"changes": changes,
	})
}

// validateFailure reports one non-conforming or malformed record.
type validateFailure struct {
	Record int64  `json:"record"`
	Error  string `json:"error"`
}

// maxValidateFailures caps the failure list in a validate response so
// a wholly mismatched body cannot balloon the reply.
const maxValidateFailures = 20

// handleValidate checks each NDJSON record of the body for
// conformance against the tenant's current fused schema.
func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request, t *tenant) {
	codec, err := t.repo.Load().Schema().MarshalJSON()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	target, err := types.UnmarshalJSON(codec)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	var (
		checked  int64
		valid    int64
		failures []validateFailure
	)
	ctx := r.Context()
	p := jsontext.NewParser(s.body(w, r), jsontext.Options{})
	for {
		if ctx.Err() != nil {
			s.writeError(w, http.StatusBadRequest, ctx.Err())
			return
		}
		v, err := p.Next()
		if err == io.EOF {
			break
		}
		checked++
		switch {
		case err != nil:
			if len(failures) < maxValidateFailures {
				failures = append(failures, validateFailure{Record: checked, Error: err.Error()})
			}
			// A parse error poisons the rest of the stream; stop here
			// rather than report cascading failures.
			s.writeJSON(w, http.StatusOK, map[string]any{
				"tenant": t.name, "checked": checked, "valid": valid,
				"invalid": checked - valid, "failures": failures,
			})
			return
		case types.Member(v, target):
			valid++
		default:
			if len(failures) < maxValidateFailures {
				failures = append(failures, validateFailure{Record: checked, Error: "does not conform to schema"})
			}
		}
	}
	if failures == nil {
		failures = []validateFailure{}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"tenant": t.name, "checked": checked, "valid": valid,
		"invalid": checked - valid, "failures": failures,
	})
}

// handleSnapshotGet serialises the tenant's repository in the
// Save/Load wire format. Buffering before writing keeps failures as
// proper 500s instead of torn responses.
func (s *Server) handleSnapshotGet(w http.ResponseWriter, _ *http.Request, t *tenant) {
	var buf bytes.Buffer
	if err := t.repo.Load().Save(&buf); err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

// handleSnapshotPut replaces the tenant's repository with one decoded
// from the request body — the restore half of snapshot/restore.
func (s *Server) handleSnapshotPut(w http.ResponseWriter, r *http.Request, t *tenant) {
	repo, err := jsi.LoadRepository(s.body(w, r))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding snapshot: %w", err))
		return
	}
	t.repo.Store(repo)
	s.reg.Add("schemad_restores", 1)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"tenant":  t.name,
		"records": repo.Count(),
	})
}

func (s *Server) handleDeleteTenant(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	existed, err := s.tenants.remove(name)
	switch {
	case err != nil && existed:
		s.writeError(w, http.StatusInternalServerError, err)
	case err != nil:
		s.writeError(w, http.StatusBadRequest, err)
	case !existed:
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no tenant %q", name))
	default:
		s.writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
	}
}
