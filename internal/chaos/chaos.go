// Package chaos is the repository's fault-injection harness: it turns
// the fusion laws (commutativity and associativity of type fusion,
// Theorems 5.4 and 5.5 of the paper) into an executable crash-safety
// oracle for the map-reduce engine.
//
// The paper's pipeline inherits fault tolerance from Spark, which
// transparently re-executes failed tasks; re-execution is correct
// exactly because fusion is a commutative monoid, so outputs may meet
// the reduction in any order and any multiplicity of retries. The
// hand-rolled engine in internal/mapreduce makes the same bet, and
// this package collects the evidence: a Plan expands a seed into a
// deterministic schedule of transient errors, permanent errors and
// artificial stragglers keyed by task sequence number, and the tests
// next to this file replay hundreds of such schedules against a
// no-fault reference run, asserting byte-identical schemas whenever
// the failure policy permits completion.
//
// Everything is a pure function of the seed: the same Plan injects the
// same faults into the same tasks on every run, on every machine, so a
// failing schedule reproduces from its seed alone. See docs/FAULTS.md
// for how to run and extend the harness.
package chaos

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/mapreduce"
)

// ErrInjected is the root of every transient fault this package
// injects; match it with errors.Is.
var ErrInjected = errors.New("chaos: injected transient fault")

// ErrInjectedPermanent is the root of every permanent fault this
// package injects. It is wrapped with mapreduce.Permanent, so the
// retry machinery gives up on the task immediately.
var ErrInjectedPermanent = errors.New("chaos: injected permanent fault")

// Plan parameterizes a deterministic failure schedule. The zero Plan
// injects nothing; DefaultPlan returns the mix the harness tests use.
// All probabilities are in [0, 1] and are consumed via the seed, so
// two Plans with equal fields inject identical faults.
type Plan struct {
	// Seed selects the schedule; every other field shapes it.
	Seed int64
	// PFault is the probability that a task is faulty at all.
	PFault float64
	// MaxTransient bounds the consecutive transient faults a faulty
	// task suffers before succeeding: each faulty task fails its first
	// 1..MaxTransient attempts. A retry budget of at least MaxTransient
	// therefore always reaches the successful attempt.
	MaxTransient int
	// PStraggle is the probability that a faulty task's attempts are
	// also delayed (artificial stragglers), exercising timeouts.
	PStraggle float64
	// MaxDelay bounds the straggler delay; zero disables delays even
	// when PStraggle fires.
	MaxDelay time.Duration
	// PPermanent is the probability that a faulty task's fault is
	// permanent instead of transient: every attempt fails with a
	// mapreduce.Permanent error. Such tasks can only complete a run
	// under the Skip policy, which quarantines them.
	PPermanent float64
}

// DefaultPlan returns a transient-only plan: roughly 40% of tasks fail
// their first one or two attempts, a quarter of those straggle briefly
// first, and none fail permanently — so a Retry policy with budget >=
// MaxTransient always completes.
func DefaultPlan(seed int64) Plan {
	return Plan{
		Seed:         seed,
		PFault:       0.4,
		MaxTransient: 2,
		PStraggle:    0.25,
		MaxDelay:     200 * time.Microsecond,
	}
}

// taskFate is the per-task expansion of the plan.
type taskFate struct {
	permanent bool
	transient int // attempts 0..transient-1 fail
	delay     time.Duration
}

// fate derives a task's fate from the seed — a pure function, so the
// schedule is identical on every run and can be consulted both by the
// injector and by tests predicting outcomes.
func (p Plan) fate(seq int) taskFate {
	h := mix64(uint64(p.Seed) ^ mix64(uint64(seq)))
	if !coin(h, p.PFault) {
		return taskFate{}
	}
	var f taskFate
	h2 := mix64(h)
	if coin(h2, p.PPermanent) {
		f.permanent = true
		return f
	}
	if p.MaxTransient > 0 {
		f.transient = 1 + int(mix64(h2+1)%uint64(p.MaxTransient))
	}
	if p.MaxDelay > 0 && coin(mix64(h2+2), p.PStraggle) {
		f.delay = time.Duration(mix64(h2+3) % uint64(p.MaxDelay))
	}
	return f
}

// Fault is the raw schedule lookup: what the plan injects into attempt
// `attempt` (0-based) of task `seq`.
func (p Plan) Fault(seq, attempt int) (delay time.Duration, err error) {
	f := p.fate(seq)
	if f.permanent {
		return 0, mapreduce.Permanent(fmt.Errorf("%w: task %d", ErrInjectedPermanent, seq))
	}
	if attempt < f.transient {
		return f.delay, fmt.Errorf("%w: task %d attempt %d", ErrInjected, seq, attempt)
	}
	return 0, nil
}

// Injector adapts the plan to the engine's hook.
func (p Plan) Injector() mapreduce.FaultInjector {
	return func(seq, attempt int) mapreduce.Fault {
		delay, err := p.Fault(seq, attempt)
		return mapreduce.Fault{Delay: delay, Err: err}
	}
}

// PermanentTasks returns how many of the first n tasks the plan fails
// permanently — the number a Skip-policy run over n tasks quarantines.
func (p Plan) PermanentTasks(n int) int {
	count := 0
	for seq := 0; seq < n; seq++ {
		if p.fate(seq).permanent {
			count++
		}
	}
	return count
}

// FaultyTasks returns how many of the first n tasks fail at least one
// attempt.
func (p Plan) FaultyTasks(n int) int {
	count := 0
	for seq := 0; seq < n; seq++ {
		f := p.fate(seq)
		if f.permanent || f.transient > 0 {
			count++
		}
	}
	return count
}

// coin maps a hash to a biased coin flip with probability prob.
func coin(h uint64, prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	// Use the top 53 bits for an unbiased float in [0, 1).
	return float64(h>>11)/float64(1<<53) < prob
}

// mix64 is the splitmix64 finalizer, the same mix the engine uses for
// its deterministic backoff jitter.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
