package chaos_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	jsi "repro"
	"repro/internal/chaos"
	"repro/internal/dataset"
	"repro/internal/mapreduce"
)

// testInput generates one deterministic NDJSON corpus for the harness.
func testInput(t *testing.T, name string, n int) []byte {
	t.Helper()
	g, err := dataset.New(name)
	if err != nil {
		t.Fatalf("dataset.New(%q): %v", name, err)
	}
	return dataset.NDJSON(g, n, 20170321)
}

// publicInjector adapts a chaos plan to the public API's hook.
func publicInjector(p chaos.Plan) jsi.FaultInjector {
	return func(chunk, attempt int) jsi.InjectedFault {
		delay, err := p.Fault(chunk, attempt)
		return jsi.InjectedFault{Delay: delay, Err: err}
	}
}

// schemaJSON renders a schema to its canonical bytes.
func schemaJSON(t *testing.T, s *jsi.Schema) []byte {
	t.Helper()
	b, err := s.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	return b
}

// TestRetryByteIdenticalAcrossSchedules is the harness's acceptance
// criterion: with a Retry policy and only transient injected faults,
// the inferred schema is byte-identical to a no-fault reference across
// >= 100 randomized failure schedules. The fusion laws make retried
// outputs meet the fold in a different order without changing the
// reduction, and this test is the executable evidence.
func TestRetryByteIdenticalAcrossSchedules(t *testing.T) {
	data := testInput(t, "mixed", 400)
	opts := jsi.Options{Workers: 4}
	refSchema, refStats, err := jsi.Infer(context.Background(), jsi.FromBytes(data), opts)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refJSON := schemaJSON(t, refSchema)

	const schedules = 120
	totalRetries := 0
	for seed := int64(1); seed <= schedules; seed++ {
		plan := chaos.DefaultPlan(seed)
		opts := jsi.Options{
			Workers:       4,
			Retries:       plan.MaxTransient,
			FaultInjector: publicInjector(plan),
		}
		schema, st, err := jsi.Infer(context.Background(), jsi.FromBytes(data), opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := schemaJSON(t, schema); !bytes.Equal(got, refJSON) {
			t.Fatalf("seed %d: schema diverged from reference\n got: %s\nwant: %s", seed, got, refJSON)
		}
		if st.Records != refStats.Records {
			t.Fatalf("seed %d: Records = %d, want %d", seed, st.Records, refStats.Records)
		}
		if st.QuarantinedChunks != 0 {
			t.Fatalf("seed %d: QuarantinedChunks = %d, want 0 (transient-only plan)", seed, st.QuarantinedChunks)
		}
		totalRetries += st.Retries
	}
	if totalRetries == 0 {
		t.Fatalf("no retries across %d schedules: the plans injected nothing", schedules)
	}
	t.Logf("%d schedules, %d retried attempts, schema byte-identical throughout", schedules, totalRetries)
}

// TestRetryEnrichmentByteIdentical re-runs the retry acceptance
// criterion with the enrichment lattice on: across randomized
// transient-fault schedules, the annotated JSON Schema and the
// per-path enrichment report must be byte-identical to a no-fault
// enriched reference.
//
// This pins the engine's exactly-once-combine stance for enrichment
// under at-least-once map execution: a failed chunk attempt discards
// its lattice along with its accumulator, so a retried chunk's values
// are counted once no matter how many attempts ran. The guarantee is
// NOT the sketches' idempotence — HyperLogLog (register max) and Bloom
// (bit or) would absorb double-counting, but the exact counters
// (ranges' count, array-length sums, format tallies) would not, and a
// single drifting average in x-observedAvgItems breaks byte equality.
// The byte-identical report across schedules is therefore evidence the
// discard-on-failure path works, not merely that the sketches forgive.
func TestRetryEnrichmentByteIdentical(t *testing.T) {
	data := testInput(t, "mixed", 400)
	enrich := []string{"all"}
	refSchema, refStats, err := jsi.Infer(context.Background(), jsi.FromBytes(data),
		jsi.Options{Workers: 4, Enrich: enrich})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refJS, err := refSchema.JSONSchema()
	if err != nil {
		t.Fatal(err)
	}
	refReport, err := refSchema.EnrichmentJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !refSchema.Enriched() {
		t.Fatal("reference run is not enriched")
	}

	const schedules = 60
	totalRetries := 0
	for seed := int64(1); seed <= schedules; seed++ {
		plan := chaos.DefaultPlan(seed)
		for _, dedup := range []jsi.DedupMode{jsi.DedupOff, jsi.DedupOn, jsi.DedupAuto} {
			opts := jsi.Options{
				Workers:       4,
				Dedup:         dedup,
				Retries:       plan.MaxTransient,
				FaultInjector: publicInjector(plan),
				Enrich:        enrich,
			}
			schema, st, err := jsi.Infer(context.Background(), jsi.FromBytes(data), opts)
			if err != nil {
				t.Fatalf("seed %d (dedup=%v): %v", seed, dedup, err)
			}
			js, jerr := schema.JSONSchema()
			if jerr != nil {
				t.Fatal(jerr)
			}
			if !bytes.Equal(js, refJS) {
				t.Fatalf("seed %d (dedup=%v): annotated schema diverged under faults\n got: %s\nwant: %s", seed, dedup, js, refJS)
			}
			rep, rerr := schema.EnrichmentJSON()
			if rerr != nil {
				t.Fatal(rerr)
			}
			if !bytes.Equal(rep, refReport) {
				t.Fatalf("seed %d (dedup=%v): enrichment report diverged under faults\n got: %s\nwant: %s", seed, dedup, rep, refReport)
			}
			if st.Records != refStats.Records {
				t.Fatalf("seed %d (dedup=%v): Records = %d, want %d", seed, dedup, st.Records, refStats.Records)
			}
			totalRetries += st.Retries
		}
	}
	if totalRetries == 0 {
		t.Fatalf("no retries across %d schedules: the plans injected nothing", schedules)
	}
	t.Logf("%d schedules x2 pipelines, %d retried attempts, enrichment byte-identical throughout", schedules, totalRetries)
}

// TestRetryByteIdenticalWithDedup re-runs the retry acceptance
// criterion with the hash-consed dedup pipeline: retried chunks
// re-intern their types into the shared table and re-emit their
// multisets, and neither may corrupt the result — schema bytes, record
// counts AND the exact distinct-type count must match a fault-free
// dedup reference across randomized schedules.
func TestRetryByteIdenticalWithDedup(t *testing.T) {
	data := testInput(t, "mixed", 400)
	refSchema, refStats, err := jsi.Infer(context.Background(), jsi.FromBytes(data), jsi.Options{Workers: 4, Dedup: jsi.DedupOn})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refJSON := schemaJSON(t, refSchema)
	if refStats.DistinctTypes <= 0 {
		t.Fatalf("reference DistinctTypes = %d, want > 0", refStats.DistinctTypes)
	}

	const schedules = 60
	totalRetries := 0
	for seed := int64(1); seed <= schedules; seed++ {
		plan := chaos.DefaultPlan(seed)
		opts := jsi.Options{
			Workers:       4,
			Dedup: jsi.DedupOn,
			Retries:       plan.MaxTransient,
			FaultInjector: publicInjector(plan),
		}
		schema, st, err := jsi.Infer(context.Background(), jsi.FromBytes(data), opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := schemaJSON(t, schema); !bytes.Equal(got, refJSON) {
			t.Fatalf("seed %d: dedup schema diverged under faults\n got: %s\nwant: %s", seed, got, refJSON)
		}
		if st.Records != refStats.Records {
			t.Fatalf("seed %d: Records = %d, want %d (retries must not double-count multisets)", seed, st.Records, refStats.Records)
		}
		if st.DistinctTypes != refStats.DistinctTypes {
			t.Fatalf("seed %d: DistinctTypes = %d, want %d", seed, st.DistinctTypes, refStats.DistinctTypes)
		}
		totalRetries += st.Retries
	}
	if totalRetries == 0 {
		t.Fatalf("no retries across %d schedules: the plans injected nothing", schedules)
	}
}

// TestRetryTaggedUnionsByteIdentical re-runs the retry acceptance
// criterion with the tagged-union policy on, over the two
// discriminator-bearing generators. The Variants merge participates in
// the fusion monoid, so retried chunk outputs meeting the fold in a
// different order — possibly crossing the variant cap in a different
// sequence — must still produce byte-identical schemas across 60
// randomized transient-fault schedules and all dedup modes.
func TestRetryTaggedUnionsByteIdentical(t *testing.T) {
	for _, name := range []string{"eventlog", "webhook"} {
		data := testInput(t, name, 400)
		refSchema, refStats, err := jsi.Infer(context.Background(), jsi.FromBytes(data),
			jsi.Options{Workers: 4, TaggedUnions: true})
		if err != nil {
			t.Fatalf("%s: reference run: %v", name, err)
		}
		refJSON := schemaJSON(t, refSchema)
		if !bytes.Contains(refJSON, []byte(`"variants"`)) {
			t.Fatalf("%s: tagged reference inferred no variants node:\n%s", name, refJSON)
		}

		const schedules = 60
		totalRetries := 0
		for seed := int64(1); seed <= schedules; seed++ {
			plan := chaos.DefaultPlan(seed)
			for _, dedup := range []jsi.DedupMode{jsi.DedupOff, jsi.DedupOn, jsi.DedupAuto} {
				opts := jsi.Options{
					Workers:       4,
					Dedup:         dedup,
					TaggedUnions:  true,
					Retries:       plan.MaxTransient,
					FaultInjector: publicInjector(plan),
				}
				schema, st, err := jsi.Infer(context.Background(), jsi.FromBytes(data), opts)
				if err != nil {
					t.Fatalf("%s seed %d (dedup=%v): %v", name, seed, dedup, err)
				}
				if got := schemaJSON(t, schema); !bytes.Equal(got, refJSON) {
					t.Fatalf("%s seed %d (dedup=%v): tagged schema diverged under faults\n got: %s\nwant: %s",
						name, seed, dedup, got, refJSON)
				}
				if st.Records != refStats.Records {
					t.Fatalf("%s seed %d (dedup=%v): Records = %d, want %d", name, seed, dedup, st.Records, refStats.Records)
				}
				totalRetries += st.Retries
			}
		}
		if totalRetries == 0 {
			t.Fatalf("%s: no retries across %d schedules: the plans injected nothing", name, schedules)
		}
		t.Logf("%s: %d schedules x3 dedup modes, %d retried attempts, tagged schema byte-identical", name, schedules, totalRetries)
	}
}

// pickPermanentPlan finds a deterministic plan that fails some but not
// all of the first n tasks permanently, so a Skip run both quarantines
// and completes with records.
func pickPermanentPlan(t *testing.T, n int) chaos.Plan {
	t.Helper()
	for seed := int64(1); seed <= 100; seed++ {
		p := chaos.Plan{Seed: seed, PFault: 0.3, PPermanent: 1}
		if k := p.PermanentTasks(n); k >= 1 && k <= n/2 {
			return p
		}
	}
	t.Fatal("no seed in 1..100 yields a usable permanent-fault plan")
	return chaos.Plan{}
}

// TestSkipQuarantinesPermanentChunks drives permanent faults through
// the public API: under OnErrorSkip the run completes, reports the
// quarantined chunk count in Stats and in the mapreduce_skipped
// counter, and drops exactly the poisoned chunks' records; under the
// default OnErrorFail the same schedule aborts the run.
func TestSkipQuarantinesPermanentChunks(t *testing.T) {
	data := testInput(t, "github", 400)
	const workers = 4
	nChunks := workers * 4 // FromBytes splits into workers*4 chunks
	plan := pickPermanentPlan(t, nChunks)
	want := plan.PermanentTasks(nChunks)

	_, refStats, err := jsi.Infer(context.Background(), jsi.FromBytes(data), jsi.Options{Workers: workers})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	col := jsi.NewCollector()
	opts := jsi.Options{
		Workers:       workers,
		OnError:       jsi.OnErrorSkip,
		FaultInjector: publicInjector(plan),
		Collector:     col,
	}
	_, st, err := jsi.Infer(context.Background(), jsi.FromBytes(data), opts)
	if err != nil {
		t.Fatalf("skip run: %v", err)
	}
	if st.QuarantinedChunks != want {
		t.Errorf("QuarantinedChunks = %d, want %d (plan seed %d)", st.QuarantinedChunks, want, plan.Seed)
	}
	if st.Records >= refStats.Records {
		t.Errorf("Records = %d, want fewer than the reference's %d (quarantined chunks drop records)", st.Records, refStats.Records)
	}
	if got := col.Metrics().Counters["mapreduce_skipped"]; got != int64(want) {
		t.Errorf("mapreduce_skipped = %d, want %d", got, want)
	}

	// The same schedule under the default policy must abort instead.
	_, _, err = jsi.Infer(context.Background(), jsi.FromBytes(data), jsi.Options{
		Workers:       workers,
		FaultInjector: publicInjector(plan),
	})
	if !errors.Is(err, chaos.ErrInjectedPermanent) {
		t.Errorf("OnErrorFail err = %v, want wrapped ErrInjectedPermanent", err)
	}
}

// TestSkipDedupMatchesDefault: under OnErrorSkip with the same
// permanent-fault schedule, the dedup pipeline must quarantine exactly
// the same chunks and produce the same schema and surviving record
// count as the default pipeline — a quarantined chunk's multiset is
// dropped wholesale, never partially merged.
func TestSkipDedupMatchesDefault(t *testing.T) {
	data := testInput(t, "github", 400)
	const workers = 4
	plan := pickPermanentPlan(t, workers*4)

	run := func(dedup jsi.DedupMode) (*jsi.Schema, jsi.Stats) {
		t.Helper()
		s, st, err := jsi.Infer(context.Background(), jsi.FromBytes(data), jsi.Options{
			Workers:       workers,
			Dedup:         dedup,
			OnError:       jsi.OnErrorSkip,
			FaultInjector: publicInjector(plan),
		})
		if err != nil {
			t.Fatalf("skip run (dedup=%v): %v", dedup, err)
		}
		return s, st
	}
	defSchema, defStats := run(jsi.DedupOff)
	ddSchema, ddStats := run(jsi.DedupOn)
	autoSchema, autoStats := run(jsi.DedupAuto)

	if got, want := schemaJSON(t, autoSchema), schemaJSON(t, defSchema); !bytes.Equal(got, want) {
		t.Errorf("auto skip schema diverged\n got: %s\nwant: %s", got, want)
	}
	if autoStats.Records != defStats.Records {
		t.Errorf("auto skip Records = %d, want %d", autoStats.Records, defStats.Records)
	}

	if got, want := schemaJSON(t, ddSchema), schemaJSON(t, defSchema); !bytes.Equal(got, want) {
		t.Errorf("dedup skip schema diverged\n got: %s\nwant: %s", got, want)
	}
	if ddStats.Records != defStats.Records {
		t.Errorf("dedup skip Records = %d, want %d", ddStats.Records, defStats.Records)
	}
	if ddStats.QuarantinedChunks != defStats.QuarantinedChunks {
		t.Errorf("dedup skip QuarantinedChunks = %d, want %d", ddStats.QuarantinedChunks, defStats.QuarantinedChunks)
	}
	if ddStats.DistinctTypes != defStats.DistinctTypes {
		t.Errorf("dedup skip DistinctTypes = %d, want %d", ddStats.DistinctTypes, defStats.DistinctTypes)
	}
}

// TestRetriedRunMetricsMatchCleanRun is the observability property:
// after stripping timing- and fault-dependent metrics, the merged
// snapshots of a retried run equal those of a clean run over the same
// partitions — retried attempts record nothing until they succeed, so
// faults leave no trace outside the fault counters themselves.
func TestRetriedRunMetricsMatchCleanRun(t *testing.T) {
	partitions := [][]byte{
		testInput(t, "github", 200),
		testInput(t, "twitter", 200),
	}

	run := func(data []byte, inject bool, seed int64) jsi.Metrics {
		t.Helper()
		col := jsi.NewCollector()
		opts := jsi.Options{Workers: 4, Collector: col}
		if inject {
			plan := chaos.DefaultPlan(seed)
			opts.Retries = plan.MaxTransient
			opts.FaultInjector = publicInjector(plan)
		}
		if _, _, err := jsi.Infer(context.Background(), jsi.FromBytes(data), opts); err != nil {
			t.Fatalf("run (inject=%v, seed %d): %v", inject, seed, err)
		}
		return col.Metrics()
	}

	var clean, faulty jsi.Metrics
	for i, data := range partitions {
		clean = clean.Merge(run(data, false, 0))
		faulty = faulty.Merge(run(data, true, int64(40+i)))
	}

	if got := faulty.WithoutTimings().Counters["mapreduce_retries"]; got == 0 {
		t.Fatal("faulty run recorded no mapreduce_retries (plan injected nothing, or WithoutTimings stripped a fault counter)")
	}

	cleanJSON, err := clean.WithoutTimings().WithoutFaults().MarshalJSON()
	if err != nil {
		t.Fatalf("marshal clean: %v", err)
	}
	faultyJSON, err := faulty.WithoutTimings().WithoutFaults().MarshalJSON()
	if err != nil {
		t.Fatalf("marshal faulty: %v", err)
	}
	if !bytes.Equal(cleanJSON, faultyJSON) {
		t.Errorf("snapshots diverge after WithoutTimings+WithoutFaults\nclean:  %s\nfaulty: %s", cleanJSON, faultyJSON)
	}
}

// TestEngineStragglersTimeOutAndRecover exercises the straggler path at
// the engine level: injected delays far beyond the per-attempt timeout
// are cut off, counted as timeouts, and retried to success — the
// map-reduce answer is unchanged.
func TestEngineStragglersTimeOutAndRecover(t *testing.T) {
	plan := chaos.Plan{
		Seed:         11,
		PFault:       1, // every task fails its first attempt...
		MaxTransient: 1,
		PStraggle:    1, // ...after stalling as a straggler
		MaxDelay:     time.Second,
	}
	items := make([]int, 40)
	wantSum := 0
	for i := range items {
		items[i] = i + 1
		wantSum += i + 1
	}
	cfg := mapreduce.Config{
		Workers:  8,
		Injector: plan.Injector(),
		Failure: mapreduce.FailurePolicy{
			Mode:        mapreduce.Retry,
			MaxRetries:  3,
			BaseBackoff: 100 * time.Microsecond,
			MaxBackoff:  time.Millisecond,
			TaskTimeout: 5 * time.Millisecond,
		},
	}
	mapFn := func(_ context.Context, v int) (int, error) { return v, nil }
	sum, st, err := mapreduce.RunSlice(context.Background(), items, mapFn, func(a, b int) int { return a + b }, 0, cfg)
	if err != nil {
		t.Fatalf("RunSlice: %v", err)
	}
	if sum != wantSum {
		t.Errorf("sum = %d, want %d", sum, wantSum)
	}
	if st.Timeouts == 0 {
		t.Error("Timeouts = 0, want > 0: second-long stragglers must hit the 5ms timeout")
	}
	if st.Retries == 0 {
		t.Error("Retries = 0, want > 0")
	}
}

// TestPlanDeterminism pins the schedule algebra: equal plans inject
// identical faults, different seeds diverge, the zero plan injects
// nothing, and the counting helpers agree with the raw lookups.
func TestPlanDeterminism(t *testing.T) {
	const n = 64
	a := chaos.DefaultPlan(42)
	b := chaos.DefaultPlan(42)
	other := chaos.DefaultPlan(43)
	diverged := false
	faulty := 0
	for seq := 0; seq < n; seq++ {
		taskFaulty := false
		for attempt := 0; attempt < 4; attempt++ {
			ad, ae := a.Fault(seq, attempt)
			bd, be := b.Fault(seq, attempt)
			if ad != bd || (ae == nil) != (be == nil) {
				t.Fatalf("equal plans diverge at (%d, %d)", seq, attempt)
			}
			if ae != nil && !errors.Is(ae, chaos.ErrInjected) {
				t.Fatalf("transient-only plan injected a non-transient error at (%d, %d): %v", seq, attempt, ae)
			}
			od, oe := other.Fault(seq, attempt)
			if ad != od || (ae == nil) != (oe == nil) {
				diverged = true
			}
			if ae != nil {
				taskFaulty = true
			}
			if zd, ze := (chaos.Plan{Seed: 1}).Fault(seq, attempt); zd != 0 || ze != nil {
				t.Fatalf("zero-probability plan injected a fault at (%d, %d)", seq, attempt)
			}
		}
		if taskFaulty {
			faulty++
		}
	}
	if !diverged {
		t.Error("seeds 42 and 43 produce identical schedules over 64 tasks")
	}
	if got := a.FaultyTasks(n); got != faulty {
		t.Errorf("FaultyTasks(%d) = %d, want %d (counted from Fault lookups)", n, got, faulty)
	}
	if got := a.PermanentTasks(n); got != 0 {
		t.Errorf("PermanentTasks(%d) = %d, want 0 for a transient-only plan", n, got)
	}
}
