package jsoninference

import (
	"context"
	"fmt"
	"io"

	"repro/internal/abstraction"
	"repro/internal/jsontext"
	"repro/internal/pathquery"
	"repro/internal/profile"
	"repro/internal/value"
)

// This file exposes the extensions the paper's conclusion proposes
// (Section 7): statistics-enriched schemas, precision-preserving array
// inference, and the schema-driven path analysis / projection the
// introduction motivates.

// Profile is a statistics-enriched schema: the same structure as a
// Schema, annotated at every position with occurrence shares, field
// presence percentages, numeric ranges, string lengths and array
// lengths. Profiles merge like schemas (commutatively, associatively),
// so they support the same incremental maintenance.
type Profile struct {
	p profile.Profile
}

// InferProfile runs statistics-enriched inference over a Source — the
// profile counterpart of Infer, and like it the only profile entry
// point that accepts a context and therefore supports cancellation and
// deadlines (taking effect between records). Any Source kind works:
// bytes, readers (plain or chunked), files. Values are decoded and
// profiled sequentially with constant memory — a profile accumulates
// every value's statistics, so there is no parallel map phase to
// distribute. The returned Stats carries the feed-side numbers
// (Records, Bytes); the type-level fields stay zero.
//
// Profiles merge commutatively and associatively (Profile.Merge), so
// partitioned datasets can be profiled partition by partition and
// merged, exactly like schemas.
func InferProfile(ctx context.Context, src Source, opts Options) (*Profile, Stats, error) {
	if err := opts.validate(); err != nil {
		return nil, Stats{}, err
	}
	if src == nil {
		return nil, Stats{}, fmt.Errorf("%w: nil Source", ErrInvalidOptions)
	}
	var out Profile
	n, err := src.scan(ctx, opts.env(), func(v value.Value) error {
		out.p.Add(v)
		return nil
	})
	if err != nil {
		return nil, Stats{}, fmt.Errorf("jsoninference: %w", err)
	}
	return &out, Stats{Records: out.p.Count, Bytes: n}, nil
}

// ProfileNDJSON profiles a collection of whitespace-separated JSON
// values. It is InferProfile over FromBytes with a background context.
//
// Deprecated: use InferProfile, which accepts a context and any Source
// kind. ProfileNDJSON remains for compatibility, mirroring how the
// Infer* wrappers sit over Infer.
func ProfileNDJSON(data []byte, opts Options) (*Profile, error) {
	p, _, err := InferProfile(context.Background(), FromBytes(data), opts)
	return p, err
}

// ProfileReader profiles a stream of JSON values with constant memory.
// It is InferProfile over FromReader with a background context.
//
// Deprecated: use InferProfile, which accepts a context and any Source
// kind. ProfileReader remains for compatibility, mirroring how the
// Infer* wrappers sit over Infer.
func ProfileReader(r io.Reader, opts Options) (*Profile, error) {
	p, _, err := InferProfile(context.Background(), FromReader(r), opts)
	return p, err
}

// Records reports the number of values profiled.
func (p *Profile) Records() int64 { return p.p.Count }

// Merge folds another profile into this one; like Schema.Fuse, the
// result describes the concatenated collections.
func (p *Profile) Merge(other *Profile) {
	if other != nil {
		p.p.Merge(&other.p)
	}
}

// Schema returns the plain schema the profile implies. It equals the
// schema the inference pipeline produces for the same data.
func (p *Profile) Schema() *Schema { return newSchema(p.p.Type()) }

// String renders the annotated schema for human consumption.
func (p *Profile) String() string { return p.p.Render() }

// MarshalJSON serializes the profile so statistics can be stored next to
// schemas and merged across processes.
func (p *Profile) MarshalJSON() ([]byte, error) { return p.p.MarshalJSON() }

// UnmarshalProfileJSON decodes a profile encoded with MarshalJSON.
func UnmarshalProfileJSON(data []byte) (*Profile, error) {
	var out Profile
	if err := out.p.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return &out, nil
}

// AbstractKeys rewrites dictionary-like record types — many keys, similar
// value types, the Wikidata ids-as-keys pathology of the paper's
// Section 6.2 — into abstracted map types {*: T}. minKeys is the minimum
// field count to consider (0 = default 16). The result is a sound
// widening: every value of the original schema conforms to the
// abstracted one, and fusing further records into it refines the element
// type instead of re-growing the key explosion.
func (s *Schema) AbstractKeys(minKeys int) *Schema {
	return newSchema(abstraction.Abstract(s.t, abstraction.Options{MinKeys: minKeys}))
}

// PathMatch is one concrete, typed path through a schema, produced by
// Schema.ExpandPath.
type PathMatch struct {
	// Path is the concrete path with wildcards resolved, e.g.
	// "$.entities.hashtags[*].text".
	Path string
	// Type is the rendered type of the values the path selects.
	Type string
	// CanMiss reports whether a conforming value may lack the path
	// (optional field, union branch, or possibly-empty array on the
	// way).
	CanMiss bool
}

// ExpandPath resolves a JSONPath-like expression ($, .key, ["key"], .*,
// [*]) against the schema: wildcards expand to the concrete paths the
// data can contain, each with its static type. An empty result proves
// the path can never match — the compile-time error detection the
// paper's introduction motivates.
func (s *Schema) ExpandPath(path string) ([]PathMatch, error) {
	p, err := pathquery.Parse(path)
	if err != nil {
		return nil, err
	}
	ms := pathquery.Expand(s.t, p)
	out := make([]PathMatch, len(ms))
	for i, m := range ms {
		out[i] = PathMatch{Path: m.Path.String(), Type: m.Type.String(), CanMiss: m.CanMiss}
	}
	return out, nil
}

// Projection is a compiled set of paths used to load only the fragments
// of each record a query needs (the schema-based projection optimization
// of Section 1).
type Projection struct {
	mask *pathquery.Mask
}

// NewProjection compiles a projection from path expressions.
func NewProjection(paths ...string) (*Projection, error) {
	parsed := make([]pathquery.Path, len(paths))
	for i, src := range paths {
		p, err := pathquery.Parse(src)
		if err != nil {
			return nil, err
		}
		parsed[i] = p
	}
	return &Projection{mask: pathquery.NewMask(parsed...)}, nil
}

// ApplyJSON projects one JSON value: the result contains only the
// fragments the projection's paths can select, rendered as canonical
// JSON.
func (p *Projection) ApplyJSON(data []byte) ([]byte, error) {
	v, err := jsontext.ParseBytes(data)
	if err != nil {
		return nil, fmt.Errorf("jsoninference: %w", err)
	}
	return value.AppendJSON(nil, p.mask.Apply(v)), nil
}
