package jsoninference_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	jsi "repro"
	"repro/internal/dataset"
)

// manyChunks writes an NDJSON file large enough to split into many
// chunks at the given chunk size.
func manyChunks(t *testing.T, records int) (string, []byte) {
	t.Helper()
	g, err := dataset.New("twitter")
	if err != nil {
		t.Fatal(err)
	}
	data := dataset.NDJSON(g, records, 11)
	path := filepath.Join(t.TempDir(), "data.ndjson")
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	return path, data
}

// endlessReader yields the same NDJSON record forever, so only
// cancellation can end a run over it.
type endlessReader struct{ record []byte }

func (r endlessReader) Read(p []byte) (int, error) {
	n := 0
	for n+len(r.record) <= len(p) {
		n += copy(p[n:], r.record)
	}
	if n == 0 {
		n = copy(p, r.record)
	}
	return n, nil
}

// checkNoLeakedGoroutines asserts the goroutine count returns to its
// pre-test level, allowing the runtime a moment to wind workers down.
func checkNoLeakedGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestInferCancellation cancels a run mid-flight for every Source kind
// and asserts a prompt, clean return: the error reports the
// cancellation and no pipeline goroutine survives (the -race runs of
// CI would also flag any unsynchronized stragglers).
func TestInferCancellation(t *testing.T) {
	path, data := manyChunks(t, 2000)
	opts := jsi.Options{Workers: 2, ChunkBytes: 4 << 10}

	sources := map[string]func() jsi.Source{
		"bytes":  func() jsi.Source { return jsi.FromBytes(data) },
		"reader": func() jsi.Source { return jsi.FromReader(endlessReader{record: []byte(`{"a":1}` + "\n")}) },
		"file":   func() jsi.Source { return jsi.FromFile(path) },
		"files":  func() jsi.Source { return jsi.FromFiles(path, path) },
	}
	for name, src := range sources {
		t.Run(name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			// Cancel from the first progress callback: the run is then
			// provably mid-flight, past at least one chunk (or batch of
			// records on the streaming path).
			o := opts
			o.Progress = func(jsi.Metrics) { cancel() }
			_, _, err := jsi.Infer(ctx, src(), o)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			checkNoLeakedGoroutines(t, before)
		})
	}
}

// TestInferPreCancelled asserts an already-cancelled context never
// starts work.
func TestInferPreCancelled(t *testing.T) {
	_, data := manyChunks(t, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := jsi.Infer(ctx, jsi.FromBytes(data), jsi.Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestInferMatchesWrappers pins the wrapper contract: Infer over each
// Source kind returns exactly what the corresponding legacy entry
// point returns.
func TestInferMatchesWrappers(t *testing.T) {
	path, data := manyChunks(t, 300)
	opts := jsi.Options{Workers: 3, ChunkBytes: 8 << 10}
	ctx := context.Background()

	wrapped, wStats, err := jsi.InferNDJSON(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	direct, dStats, err := jsi.Infer(ctx, jsi.FromBytes(data), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !wrapped.Equal(direct) || wStats != dStats {
		t.Errorf("FromBytes disagrees with InferNDJSON: %+v vs %+v", dStats, wStats)
	}

	fileSchema, fStats, err := jsi.Infer(ctx, jsi.FromFile(path), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !fileSchema.Equal(direct) {
		t.Errorf("FromFile schema differs:\n%s\nvs\n%s", fileSchema, direct)
	}
	if fStats.Records != wStats.Records || fStats.DistinctTypes != wStats.DistinctTypes {
		t.Errorf("FromFile stats differ: %+v vs %+v", fStats, wStats)
	}

	readerSchema, _, err := jsi.Infer(ctx, jsi.FromReader(bytes.NewReader(data)), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !readerSchema.Equal(direct) {
		t.Errorf("FromReader schema differs:\n%s\nvs\n%s", readerSchema, direct)
	}
}

// TestInferFilesBoundedMemoryPath asserts FromFiles goes through the
// chunked pipeline (many chunks per file) and still fuses to the
// whole-dataset schema.
func TestInferFilesBoundedMemoryPath(t *testing.T) {
	path, data := manyChunks(t, 500)
	c := jsi.NewCollector()
	opts := jsi.Options{ChunkBytes: 4 << 10, Collector: c}
	split, stats, err := jsi.Infer(context.Background(), jsi.FromFiles(path, path), opts)
	if err != nil {
		t.Fatal(err)
	}
	whole, _, err := jsi.InferNDJSON(append(append([]byte(nil), data...), data...), jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !split.Equal(whole) {
		t.Errorf("per-file fusion differs from whole-dataset inference:\n%s\nvs\n%s", split, whole)
	}
	if stats.Records != 1000 {
		t.Errorf("Records = %d", stats.Records)
	}
	m := c.Metrics()
	if m.Counters["infer_chunks"] < 4 {
		t.Errorf("expected many chunks through the bounded-memory path, got %d", m.Counters["infer_chunks"])
	}
}

// TestOptionsValidation drives every negative field through every
// entry point that accepts Options.
func TestOptionsValidation(t *testing.T) {
	fields := []struct {
		name string
		opts jsi.Options
	}{
		{"Workers", jsi.Options{Workers: -1}},
		{"ChunkBytes", jsi.Options{ChunkBytes: -1}},
		{"MaxDepth", jsi.Options{MaxDepth: -1}},
		{"MaxTupleLen", jsi.Options{MaxTupleLen: -1}},
	}
	data := []byte(`{"a":1}`)
	entries := []struct {
		name string
		call func(jsi.Options) error
	}{
		{"Infer", func(o jsi.Options) error {
			_, _, err := jsi.Infer(context.Background(), jsi.FromBytes(data), o)
			return err
		}},
		{"InferNDJSON", func(o jsi.Options) error { _, _, err := jsi.InferNDJSON(data, o); return err }},
		{"InferReader", func(o jsi.Options) error {
			_, _, err := jsi.InferReader(strings.NewReader(`{"a":1}`), o)
			return err
		}},
		{"InferFile", func(o jsi.Options) error { _, _, err := jsi.InferFile("/dev/null", o); return err }},
		{"InferFiles", func(o jsi.Options) error { _, _, err := jsi.InferFiles([]string{"/dev/null"}, o); return err }},
		{"ProfileNDJSON", func(o jsi.Options) error { _, err := jsi.ProfileNDJSON(data, o); return err }},
		{"ProfileReader", func(o jsi.Options) error {
			_, err := jsi.ProfileReader(strings.NewReader(`{"a":1}`), o)
			return err
		}},
	}
	for _, entry := range entries {
		for _, field := range fields {
			t.Run(entry.name+"/"+field.name, func(t *testing.T) {
				err := entry.call(field.opts)
				if !errors.Is(err, jsi.ErrInvalidOptions) {
					t.Fatalf("err = %v, want ErrInvalidOptions", err)
				}
				if !strings.Contains(err.Error(), field.name) {
					t.Errorf("error %q does not name the bad field %s", err, field.name)
				}
			})
		}
	}
	// A nil Source is rejected, not dereferenced.
	if _, _, err := jsi.Infer(context.Background(), nil, jsi.Options{}); !errors.Is(err, jsi.ErrInvalidOptions) {
		t.Errorf("nil Source: err = %v, want ErrInvalidOptions", err)
	}
}

// TestProgressCallback asserts Progress fires during a run (with and
// without an explicit Collector) and sees monotonically growing
// counters, plus one final complete snapshot.
func TestProgressCallback(t *testing.T) {
	_, data := manyChunks(t, 500)
	var snaps []int64
	opts := jsi.Options{Workers: 1, Progress: func(m jsi.Metrics) {
		snaps = append(snaps, m.Counters["infer_records"])
	}}
	_, stats, err := jsi.Infer(context.Background(), jsi.FromBytes(data), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("Progress fired %d times, want at least per-chunk + final", len(snaps))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i] < snaps[i-1] {
			t.Errorf("records counter went backwards: %v", snaps)
		}
	}
	if last := snaps[len(snaps)-1]; last != stats.Records {
		t.Errorf("final snapshot saw %d records, stats say %d", last, stats.Records)
	}
}

// TestReaderEOFVsEndless sanity-checks the endlessReader helper against
// a bounded read, so the cancellation test above cannot silently pass
// by the reader running dry.
func TestReaderEOFVsEndless(t *testing.T) {
	var r io.Reader = endlessReader{record: []byte(`1` + "\n")}
	buf := make([]byte, 16)
	for i := 0; i < 3; i++ {
		n, err := r.Read(buf)
		if n == 0 || err != nil {
			t.Fatalf("endlessReader ran dry: n=%d err=%v", n, err)
		}
	}
}
