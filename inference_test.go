package jsoninference_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	jsi "repro"
	"repro/internal/dataset"
	"repro/internal/types"
)

func TestInferValue(t *testing.T) {
	schema, err := jsi.InferValue(map[string]any{
		"id":   1.0,
		"name": "x",
		"tags": []any{"a", "b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "{id: Num, name: Str, tags: [Str*]}"
	if schema.String() != want {
		t.Errorf("schema = %s, want %s", schema, want)
	}
	if _, err := jsi.InferValue(struct{}{}); err == nil {
		t.Error("unsupported Go type accepted")
	}
}

func TestInferJSON(t *testing.T) {
	schema, err := jsi.InferJSON([]byte(`{"a": [1, "two", {"b": null}]}`))
	if err != nil {
		t.Fatal(err)
	}
	want := "{a: [(Num + Str + {b: Null})*]}"
	if schema.String() != want {
		t.Errorf("schema = %s, want %s", schema, want)
	}
	if _, err := jsi.InferJSON([]byte(`{"a":`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := jsi.InferJSON([]byte(`1 2`)); err == nil {
		t.Error("multiple values accepted by InferJSON")
	}
}

func TestInferNDJSON(t *testing.T) {
	data := []byte(`{"a": 1}
{"a": 2, "b": "x"}
{"a": "three"}
`)
	schema, stats, err := jsi.InferNDJSON(data, jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := "{a: Num + Str, b: Str?}"
	if schema.String() != want {
		t.Errorf("schema = %s, want %s", schema, want)
	}
	if stats.Records != 3 {
		t.Errorf("Records = %d", stats.Records)
	}
	if stats.DistinctTypes != 3 {
		t.Errorf("DistinctTypes = %d", stats.DistinctTypes)
	}
	if stats.MinTypeSize != 3 || stats.MaxTypeSize != 5 {
		t.Errorf("type sizes = %d..%d", stats.MinTypeSize, stats.MaxTypeSize)
	}
	if stats.Bytes != int64(len(data)) {
		t.Errorf("Bytes = %d, want %d", stats.Bytes, len(data))
	}
}

// TestTaggedUnionsTwitterAcceptance is the PR's acceptance criterion
// for tagged-union inference: on a Twitter-style mix of tweets and
// control records, the default paper policy collapses everything into
// one record where every shape's fields go optional, while
// Options.TaggedUnions separates the shapes into a wrapper-discriminated
// union with NO spurious optional fields in any branch.
func TestTaggedUnionsTwitterAcceptance(t *testing.T) {
	data := []byte(strings.Join([]string{
		`{"created_at":"2017-03-21T10:00:00Z","id":1,"text":"hello","user":{"id":7,"name":"ann"}}`,
		`{"delete":{"status":{"id":5,"user_id":7}}}`,
		`{"created_at":"2017-03-21T10:00:01Z","id":2,"text":"world","user":{"id":8,"name":"bob"}}`,
		`{"scrub_geo":{"user_id":7,"up_to_status_id":9}}`,
		`{"created_at":"2017-03-21T10:00:02Z","id":3,"text":"again","user":{"id":7,"name":"ann"}}`,
		`{"delete":{"status":{"id":6,"user_id":8}}}`,
	}, "\n"))

	// Paper policy: one fused record, every top-level field optional —
	// tweet fields leak into deletes and vice versa.
	paper, _, err := jsi.InferNDJSON(data, jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	paperType, err := types.UnmarshalJSON([]byte(mustMarshal(t, paper)))
	if err != nil {
		t.Fatal(err)
	}
	paperRec, ok := paperType.(*types.Record)
	if !ok {
		t.Fatalf("paper schema is %T, want record: %s", paperType, paper)
	}
	for _, key := range []string{"delete", "text"} {
		f, ok := paperRec.Get(key)
		if !ok || !f.Optional {
			t.Errorf("paper policy: field %q optional = %v, want a spurious optional (got %s)", key, f.Optional, paper)
		}
	}

	// Tagged policy: a wrapper union with clean branches.
	tagged, _, err := jsi.InferNDJSON(data, jsi.Options{TaggedUnions: true})
	if err != nil {
		t.Fatal(err)
	}
	taggedType, err := types.UnmarshalJSON([]byte(mustMarshal(t, tagged)))
	if err != nil {
		t.Fatal(err)
	}
	v, ok := taggedType.(*types.Variants)
	if !ok {
		t.Fatalf("tagged schema is %T, want variants: %s", taggedType, tagged)
	}
	if !v.Wrapper() || v.Collapsed() {
		t.Fatalf("tagged schema is not a wrapper union: %s", tagged)
	}
	if v.Len() != 2 {
		t.Fatalf("tagged union has %d cases, want 2 (delete, scrub_geo): %s", v.Len(), tagged)
	}
	for _, tag := range []string{"delete", "scrub_geo"} {
		c, ok := v.Get(tag)
		if !ok {
			t.Fatalf("tagged union missing %q case: %s", tag, tagged)
		}
		if c.Type.Len() != 1 {
			t.Errorf("%q case has %d fields, want 1: %s", tag, c.Type.Len(), tagged)
		}
		if _, leak := c.Type.Get("text"); leak {
			t.Errorf("tweet field leaked into the %q branch: %s", tag, tagged)
		}
		for _, f := range c.Type.Fields() {
			if f.Optional {
				t.Errorf("spurious optional %q in the %q branch: %s", f.Key, tag, tagged)
			}
		}
	}
	other := v.Other()
	if other == nil {
		t.Fatalf("tagged union has no catch-all tweet branch: %s", tagged)
	}
	if _, leak := other.Get("delete"); leak {
		t.Errorf("delete field leaked into the tweet branch: %s", tagged)
	}
	for _, f := range other.Fields() {
		if f.Optional {
			t.Errorf("spurious optional %q in the tweet branch: %s", f.Key, tagged)
		}
	}

	// The union still accepts both record shapes.
	for _, rec := range []string{
		`{"created_at":"2017-03-21T11:00:00Z","id":4,"text":"new","user":{"id":9,"name":"eve"}}`,
		`{"delete":{"status":{"id":7,"user_id":9}}}`,
	} {
		ok, err := tagged.Contains([]byte(rec))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("tagged schema rejects %s\nschema: %s", rec, tagged)
		}
	}
	// And the tagged schema refines the paper's: every instance it
	// accepts, the paper schema accepts too.
	if !tagged.SubschemaOf(paper) {
		t.Errorf("tagged schema is not a subschema of the paper schema\ntagged: %s\n paper: %s", tagged, paper)
	}

	// The full synthetic Twitter generator (≈3% deletes and scrub_geos
	// mixed into tweets) must produce the same shape of union.
	g, err := dataset.New("twitter")
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := jsi.InferNDJSON(dataset.NDJSON(g, 2000, 1), jsi.Options{TaggedUnions: true})
	if err != nil {
		t.Fatal(err)
	}
	s := full.String()
	if !strings.HasPrefix(s, "wrapper{") || !strings.Contains(s, "delete:") {
		t.Errorf("twitter generator did not infer a wrapper union: %s", s)
	}
}

// mustMarshal renders a schema's canonical codec bytes.
func mustMarshal(t *testing.T, s *jsi.Schema) string {
	t.Helper()
	b, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestInferNDJSONEmptyInput(t *testing.T) {
	schema, stats, err := jsi.InferNDJSON(nil, jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !schema.IsEmpty() {
		t.Errorf("schema of empty input = %s", schema)
	}
	if stats.Records != 0 {
		t.Errorf("Records = %d", stats.Records)
	}
}

func TestInferNDJSONError(t *testing.T) {
	if _, _, err := jsi.InferNDJSON([]byte(`{"a":1}`+"\n"+`{"bad`), jsi.Options{}); err == nil {
		t.Error("malformed record accepted")
	}
}

func TestInferReaderMatchesNDJSON(t *testing.T) {
	g, _ := dataset.New("twitter")
	data := dataset.NDJSON(g, 150, 5)
	parallel, pStats, err := jsi.InferNDJSON(data, jsi.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	streaming, sStats, err := jsi.InferReader(strings.NewReader(string(data)), jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !parallel.Equal(streaming) {
		t.Errorf("streaming schema differs:\nparallel:  %s\nstreaming: %s", parallel, streaming)
	}
	if pStats.Records != sStats.Records {
		t.Errorf("record counts differ: %d vs %d", pStats.Records, sStats.Records)
	}
	if sStats.MinTypeSize != pStats.MinTypeSize || sStats.MaxTypeSize != pStats.MaxTypeSize {
		t.Errorf("size stats differ: %d..%d vs %d..%d",
			sStats.MinTypeSize, sStats.MaxTypeSize, pStats.MinTypeSize, pStats.MaxTypeSize)
	}
}

func TestInferReaderError(t *testing.T) {
	_, _, err := jsi.InferReader(strings.NewReader(`{"a":1} {"dup":1,"dup":2}`), jsi.Options{})
	if err == nil || !strings.Contains(err.Error(), "record 2") {
		t.Errorf("err = %v, want record-2 duplicate-key error", err)
	}
}

func TestInferFiles(t *testing.T) {
	dir := t.TempDir()
	g, _ := dataset.New("github")
	all := dataset.NDJSON(g, 60, 9)
	lines := strings.SplitAfter(strings.TrimRight(string(all), "\n"), "\n")
	third := len(lines) / 3
	var paths []string
	for i := 0; i < 3; i++ {
		path := filepath.Join(dir, "part"+string(rune('a'+i))+".ndjson")
		chunk := strings.Join(lines[i*third:(i+1)*third], "")
		if err := os.WriteFile(path, []byte(chunk), 0o600); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	split, stats, err := jsi.InferFiles(paths, jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	whole, _, err := jsi.InferNDJSON(all, jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !split.Equal(whole) {
		t.Errorf("per-file fusion differs from whole-dataset inference:\n%s\nvs\n%s", split, whole)
	}
	if stats.Records != 60 {
		t.Errorf("Records = %d", stats.Records)
	}
	if _, _, err := jsi.InferFiles([]string{filepath.Join(dir, "missing.ndjson")}, jsi.Options{}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSchemaFuseAndEmpty(t *testing.T) {
	a, _ := jsi.InferJSON([]byte(`{"x": 1}`))
	b, _ := jsi.InferJSON([]byte(`{"y": "s"}`))
	fused := a.Fuse(b)
	want := "{x: Num?, y: Str?}"
	if fused.String() != want {
		t.Errorf("fused = %s, want %s", fused, want)
	}
	if !jsi.EmptySchema().Fuse(a).Equal(a) {
		t.Error("ε is not the identity of Fuse")
	}
	if !a.Fuse(nil).Equal(a) {
		t.Error("Fuse(nil) should be identity")
	}
	if jsi.EmptySchema().IsEmpty() != true {
		t.Error("EmptySchema not empty")
	}
}

func TestSchemaContains(t *testing.T) {
	schema, err := jsi.ParseSchema("{a: Num, b: Str?}")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := schema.Contains([]byte(`{"a": 5}`))
	if err != nil || !ok {
		t.Errorf("Contains = %v, %v", ok, err)
	}
	ok, err = schema.Contains([]byte(`{"a": "no"}`))
	if err != nil || ok {
		t.Errorf("Contains wrong-typed = %v, %v", ok, err)
	}
	if _, err := schema.Contains([]byte(`{`)); err == nil {
		t.Error("malformed value accepted by Contains")
	}
}

func TestSchemaSubschemaOf(t *testing.T) {
	small, _ := jsi.ParseSchema("{a: Num}")
	big, _ := jsi.ParseSchema("{a: Num + Str, b: Bool?}")
	if !small.SubschemaOf(big) {
		t.Error("small should be a subschema of big")
	}
	if big.SubschemaOf(small) {
		t.Error("big should not be a subschema of small")
	}
	if small.SubschemaOf(nil) {
		t.Error("SubschemaOf(nil) should be false")
	}
}

func TestSchemaJSONSchemaExport(t *testing.T) {
	schema, _ := jsi.ParseSchema("{a: Num, b: Str?}")
	data, err := schema.JSONSchema()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"type": "object"`, `"required"`, `"$schema"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSONSchema output missing %q:\n%s", want, data)
		}
	}
}

func TestSchemaCodecRoundTrip(t *testing.T) {
	orig, _ := jsi.ParseSchema("{a: (Num + Str)?, b: [{c: Null}*]}")
	data, err := orig.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := jsi.UnmarshalSchemaJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(back) {
		t.Errorf("round trip %s -> %s", orig, back)
	}
	if _, err := jsi.UnmarshalSchemaJSON([]byte(`{"k":"bogus"}`)); err == nil {
		t.Error("bad codec input accepted")
	}
}

func TestParseSchemaErrors(t *testing.T) {
	if _, err := jsi.ParseSchema("{a: Bogus}"); err == nil {
		t.Error("bad schema syntax accepted")
	}
}

func TestSchemaIndentParsesBack(t *testing.T) {
	schema, _ := jsi.InferJSON([]byte(`{"a": {"b": [1, "x"]}, "c": null}`))
	indented := schema.Indent()
	back, err := jsi.ParseSchema(indented)
	if err != nil {
		t.Fatalf("Indent output does not parse: %v\n%s", err, indented)
	}
	if !schema.Equal(back) {
		t.Error("Indent round trip changed the schema")
	}
}

func TestSchemaSizeMatchesPaperMeasure(t *testing.T) {
	schema, _ := jsi.ParseSchema("{a: Num, b: Str?}")
	if schema.Size() != 5 {
		t.Errorf("Size = %d, want 5", schema.Size())
	}
}

func TestEndToEndPaperDatasets(t *testing.T) {
	// Smoke-test the full public pipeline on each synthetic dataset.
	for _, name := range dataset.PaperNames() {
		g, _ := dataset.New(name)
		data := dataset.NDJSON(g, 300, 3)
		schema, stats, err := jsi.InferNDJSON(data, jsi.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if schema.IsEmpty() {
			t.Fatalf("%s: empty schema", name)
		}
		if stats.Records != 300 {
			t.Fatalf("%s: records = %d", name, stats.Records)
		}
		// Completeness (Theorem 5.2 corollary): every record conforms.
		for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
			ok, err := schema.Contains([]byte(line))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !ok {
				t.Fatalf("%s: inferred schema rejects its own record %s", name, line[:60])
			}
		}
	}
}

func TestInferFileMatchesNDJSON(t *testing.T) {
	g, _ := dataset.New("nytimes")
	data := dataset.NDJSON(g, 200, 27)
	path := filepath.Join(t.TempDir(), "big.ndjson")
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	// Tiny chunks force many parallel chunk fusions.
	streamed, sStats, err := jsi.InferFile(path, jsi.Options{ChunkBytes: 8 << 10, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	whole, wStats, err := jsi.InferNDJSON(data, jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !streamed.Equal(whole) {
		t.Errorf("InferFile schema differs:\n%s\nvs\n%s", streamed, whole)
	}
	if sStats.Records != wStats.Records || sStats.DistinctTypes != wStats.DistinctTypes {
		t.Errorf("stats differ: %+v vs %+v", sStats, wStats)
	}
	if sStats.Bytes != int64(len(data)) {
		t.Errorf("Bytes = %d, want %d", sStats.Bytes, len(data))
	}
}

func TestInferFileErrors(t *testing.T) {
	if _, _, err := jsi.InferFile("/no/such/file.ndjson", jsi.Options{}); err == nil {
		t.Error("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.ndjson")
	os.WriteFile(path, []byte("{\"a\":1}\n{\"broken\n"), 0o600)
	if _, _, err := jsi.InferFile(path, jsi.Options{}); err == nil {
		t.Error("malformed file accepted")
	}
}

func TestInferFileEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.ndjson")
	os.WriteFile(path, nil, 0o600)
	schema, stats, err := jsi.InferFile(path, jsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !schema.IsEmpty() || stats.Records != 0 {
		t.Errorf("empty file: schema=%s records=%d", schema, stats.Records)
	}
}
