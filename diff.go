package jsoninference

import (
	"fmt"

	"repro/internal/diff"
)

// SchemaChange is one structural difference between two schema
// versions, produced by Schema.DiffFrom. With full schemas on both
// sides, attribute additions, removals, kind changes and optionality
// changes are all visible — the change-tracking application of the
// paper's related-work discussion.
type SchemaChange struct {
	// Path is the slash-separated field path from the root; array
	// element positions appear as "[]", abstracted map keys as "*".
	Path string `json:"path"`
	// Kind is the change class: "added", "removed", "type-changed",
	// "made-optional" or "made-mandatory".
	Kind string `json:"kind"`
	// Old and New are the rendered types on each side, when applicable.
	Old string `json:"old,omitempty"`
	New string `json:"new,omitempty"`
}

// String renders the change as a one-line report.
func (c SchemaChange) String() string {
	switch c.Kind {
	case "added":
		return fmt.Sprintf("+ %-14s %s : %s", c.Kind, c.Path, c.New)
	case "removed":
		return fmt.Sprintf("- %-14s %s : %s", c.Kind, c.Path, c.Old)
	default:
		return fmt.Sprintf("~ %-14s %s : %s -> %s", c.Kind, c.Path, c.Old, c.New)
	}
}

// DiffFrom reports the structural changes from old to s, sorted by
// path: what a consumer of old's collection must absorb to handle s's.
// A nil old compares against the empty schema, so the result of the
// first inference reads as one big addition. An empty result means the
// schemas are structurally identical.
func (s *Schema) DiffFrom(old *Schema) []SchemaChange {
	oldT := EmptySchema().t
	if old != nil {
		oldT = old.t
	}
	entries := diff.Compare(oldT, s.t)
	out := make([]SchemaChange, len(entries))
	for i, e := range entries {
		out[i] = SchemaChange{Path: e.Path, Kind: e.Kind.String(), Old: e.Old, New: e.New}
	}
	return out
}
